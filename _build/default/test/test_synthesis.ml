(* Tests for Detcor_synthesis: automated addition of fail-safe,
   nonmasking and masking tolerance, verified by the Detcor_core
   checkers (experiment E7). *)

open Detcor_kernel
open Detcor_spec
open Detcor_core
open Detcor_systems
open Detcor_synthesis

let get = function
  | Ok (r : Synthesize.result) -> r
  | Error f -> Alcotest.failf "synthesis failed: %a" Synthesize.pp_failure f

let test_mem_failsafe () =
  let r =
    get
      (Synthesize.add_failsafe Memory.intolerant ~spec:Memory.spec
         ~invariant:Memory.s ~faults:Memory.page_fault)
  in
  Alcotest.(check bool) "verified fail-safe" true (Tolerance.verdict r.report);
  Alcotest.(check int) "one detector added" 1 (List.length r.added_detectors);
  (* The added guard keeps reading whenever the page is present. *)
  let _, guard = List.hd r.added_detectors in
  Alcotest.(check bool) "guard allows present" true
    (Pred.holds guard
       (State.of_list [ ("present", Value.bool true); ("data", Value.bot) ]));
  Alcotest.(check bool) "guard blocks absent" false
    (Pred.holds guard
       (State.of_list [ ("present", Value.bool false); ("data", Value.bot) ]))

let test_mem_nonmasking () =
  let r =
    get
      (Synthesize.add_nonmasking Memory.intolerant ~spec:Memory.spec
         ~invariant:Memory.s ~faults:Memory.page_fault)
  in
  Alcotest.(check bool) "verified nonmasking" true (Tolerance.verdict r.report);
  Alcotest.(check bool) "recovery synthesized" true (r.recovery_states > 0)

let test_mem_masking () =
  let r =
    get
      (Synthesize.add_masking Memory.intolerant ~spec:Memory.spec
         ~invariant:Memory.s ~faults:Memory.page_fault)
  in
  Alcotest.(check bool) "verified masking" true (Tolerance.verdict r.report);
  Alcotest.(check bool) "detector and corrector both added" true
    (r.added_detectors <> [] && r.recovery_states > 0)

(* The synthesized fail-safe guard for TMR coincides with the paper's DR
   witness (x=y or x=z) wherever the action is enabled within the span —
   the synthesizer rediscovers the detector of Section 6.1. *)
let test_tmr_failsafe_rediscovers_dr () =
  let r =
    get
      (Synthesize.add_failsafe Tmr.intolerant ~spec:Tmr.spec
         ~invariant:Tmr.invariant ~faults:Tmr.one_corruption)
  in
  Alcotest.(check bool) "verified fail-safe" true (Tolerance.verdict r.report);
  let _, guard = List.hd r.added_detectors in
  let span =
    Tolerance.fault_span Tmr.intolerant ~faults:Tmr.one_corruption
      ~from:Tmr.invariant
  in
  List.iter
    (fun st ->
      if Pred.holds Tmr.out_bot st then
        Alcotest.(check bool)
          (Fmt.str "guard = DR witness at %a" State.pp st)
          (Pred.holds Tmr.dr_witness st)
          (Pred.holds guard st))
    span.states

let test_tmr_masking () =
  let r =
    get
      (Synthesize.add_masking ~target:Tmr.out_is_uncor Tmr.intolerant
         ~spec:Tmr.spec ~invariant:Tmr.invariant ~faults:Tmr.one_corruption)
  in
  Alcotest.(check bool) "verified masking" true (Tolerance.verdict r.report)

(* Idempotence: adding fail-safe tolerance to an already fail-safe program
   succeeds and preserves the verdict. *)
let test_idempotent () =
  let r =
    get
      (Synthesize.add_failsafe Memory.failsafe ~spec:Memory.spec
         ~invariant:Memory.s ~faults:Memory.page_fault)
  in
  Alcotest.(check bool) "still fail-safe" true (Tolerance.verdict r.report)

(* Unsynthesizable: a fault that directly violates the safety
   specification from inside the invariant leaves no invariant states
   ([ms] swallows S), so fail-safe addition must fail. *)
let test_unsynthesizable () =
  let bad_fault =
    Fault.make "poison"
      [
        Action.deterministic "F:poison" Pred.true_ (fun st ->
            State.set st "data" Memory.bad);
      ]
  in
  let spec =
    Spec.make ~name:"strict"
      ~safety:
        (Detcor_spec.Safety.never
           (Pred.make "data=bad" (fun st ->
                Value.equal (State.get st "data") Memory.bad)))
      ()
  in
  match
    Synthesize.add_failsafe Memory.intolerant ~spec ~invariant:Memory.s
      ~faults:bad_fault
  with
  | Error Synthesize.Empty_invariant -> ()
  | Error f -> Alcotest.failf "unexpected failure: %a" Synthesize.pp_failure f
  | Ok _ -> Alcotest.fail "expected Empty_invariant"

(* Unrecoverable: nonmasking synthesis with recovery restricted to zero
   moves... emulated by a target no 1-variable path can reach when the
   fault corrupts two variables at once. *)
let test_ring_nonmasking_synthesis () =
  (* Strip the ring of a process's move action; recovery synthesis must
     re-establish convergence. *)
  let cfg = Token_ring.make_config 3 in
  let crippled =
    Program.make ~name:"crippled-ring"
      ~vars:(Program.var_decls (Token_ring.program cfg))
      ~actions:
        (List.filter
           (fun ac -> Action.name ac <> "move_1")
           (Program.actions (Token_ring.program cfg)))
  in
  match
    Synthesize.add_nonmasking crippled ~spec:(Token_ring.spec cfg)
      ~invariant:(Token_ring.legitimate cfg)
      ~faults:(Token_ring.corruption cfg)
  with
  | Ok r -> Alcotest.(check bool) "verified" true (Tolerance.verdict r.report)
  | Error f ->
    (* Acceptable outcome: the checker explains why recovery is impossible
       (the crippled program keeps fighting the corrector). *)
    Alcotest.(check bool)
      (Fmt.str "explained failure: %a" Synthesize.pp_failure f)
      true
      (match f with
      | Synthesize.Verification_failed _ | Synthesize.Unrecoverable_state _ ->
        true
      | Synthesize.Empty_invariant -> false)

let suite =
  ( "synthesis (E7)",
    [
      Alcotest.test_case "memory fail-safe" `Quick test_mem_failsafe;
      Alcotest.test_case "memory nonmasking" `Quick test_mem_nonmasking;
      Alcotest.test_case "memory masking" `Quick test_mem_masking;
      Alcotest.test_case "TMR rediscovers DR" `Quick test_tmr_failsafe_rediscovers_dr;
      Alcotest.test_case "TMR masking" `Quick test_tmr_masking;
      Alcotest.test_case "idempotent" `Quick test_idempotent;
      Alcotest.test_case "unsynthesizable" `Quick test_unsynthesizable;
      Alcotest.test_case "crippled ring" `Slow test_ring_nonmasking_synthesis;
    ] )
