(* Assorted edge-case tests for corners the main suites pass over:
   pretty-printers, trace suffixes, statistics, monitor interval
   semantics, injector edge cases, the umbrella module. *)

open Detcor_kernel
open Detcor_semantics

let test_value_pp () =
  Alcotest.(check string) "int" "42" (Value.to_string (Value.int 42));
  Alcotest.(check string) "bool" "true" (Value.to_string (Value.bool true));
  Alcotest.(check string) "sym" "bot" (Value.to_string Value.bot)

let test_expr_pp () =
  let e = Expr.(implies (and_ [ var "a"; bool true ]) (le (var "x") (int 3))) in
  Alcotest.(check string) "expr rendering" "((a && true) => (x <= 3))"
    (Expr.to_string e);
  Alcotest.(check string) "empty and" "true" (Expr.to_string (Expr.and_ []));
  Alcotest.(check string) "empty or" "false" (Expr.to_string (Expr.or_ []))

let test_state_pp () =
  let st = State.of_list [ ("b", Value.bool false); ("a", Value.int 1) ] in
  Alcotest.(check string) "sorted rendering" "[a=1 b=false]" (State.to_string st)

let test_trace_suffix_edges () =
  let s k = State.of_list [ ("n", Value.int k) ] in
  let tr =
    Trace.make (s 0)
      [ { Trace.action = "a"; target = s 1 }; { Trace.action = "b"; target = s 2 } ]
  in
  Alcotest.(check int) "suffix 0 keeps all" 2 (Trace.length (Trace.suffix_from tr 0));
  Alcotest.(check int) "suffix 2 keeps none" 0 (Trace.length (Trace.suffix_from tr 2));
  Alcotest.check Util.state "suffix 2 start" (s 2) (Trace.start (Trace.suffix_from tr 2));
  Alcotest.(check int) "oversized suffix clamps" 0
    (Trace.length (Trace.suffix_from tr 9))

let test_stats_edges () =
  let open Detcor_sim in
  (match Stats.summarize [ 7 ] with
  | Some s ->
    Alcotest.(check int) "singleton p50" 7 s.p50;
    Alcotest.(check int) "singleton p95" 7 s.p95
  | None -> Alcotest.fail "singleton summary");
  match Stats.summarize (List.init 100 (fun i -> i)) with
  | Some s ->
    Alcotest.(check int) "p95 of 0..99" 94 s.p95;
    Alcotest.(check int) "p50 of 0..99" 49 s.p50
  | None -> Alcotest.fail "range summary"

let test_monitor_interval_semantics () =
  (* Detection latency counts from the start of each maximal X-interval
     to the first Z inside it; intervals that end by ¬X are skipped. *)
  let open Detcor_sim in
  let mk x z = State.of_list [ ("x", Value.bool x); ("z", Value.bool z) ] in
  let px = Pred.make "x" (fun st -> Value.as_bool (State.get st "x")) in
  let pz = Pred.make "z" (fun st -> Value.as_bool (State.get st "z")) in
  let d = Detcor_core.Detector.make ~name:"t" ~witness:pz ~detection:px () in
  let trace_of states =
    match states with
    | [] -> assert false
    | first :: rest ->
      Trace.make first
        (List.map (fun st -> { Trace.action = "s"; target = st }) rest)
  in
  let run states =
    {
      Runner.trace = trace_of states;
      fault_steps = [];
      faults_injected = 0;
    }
  in
  (* X rises at index 1, Z at index 3: latency 2. *)
  Alcotest.(check (list int)) "single interval" [ 2 ]
    (Monitor.detection_latency
       (run [ mk false false; mk true false; mk true false; mk true true ])
       d);
  (* X interval that ends without Z: skipped. *)
  Alcotest.(check (list int)) "aborted interval" []
    (Monitor.detection_latency
       (run [ mk true false; mk true false; mk false false ])
       d);
  (* Immediate witness: latency 0. *)
  Alcotest.(check (list int)) "instant detection" [ 0 ]
    (Monitor.detection_latency (run [ mk true true ]) d)

let test_injector_none () =
  let open Detcor_sim in
  let injector = Injector.make Injector.None_ Detcor_core.Fault.none in
  let rng = Random.State.make [| 1 |] in
  Alcotest.(check bool) "never fires" true
    (Injector.try_inject injector ~rng ~step:0 State.empty = None);
  Alcotest.(check int) "no injections" 0 (Injector.injected injector)

let test_umbrella_module () =
  (* The umbrella namespace exposes the toolkit coherently. *)
  let open Detcor in
  let report =
    Tolerance.is_masking Systems.Memory.masking ~spec:Systems.Memory.spec
      ~invariant:Systems.Memory.s ~faults:Systems.Memory.page_fault
  in
  Alcotest.(check bool) "umbrella verdict" true (Tolerance.verdict report)

let test_check_pp () =
  let s = State.of_list [ ("x", Value.int 1) ] in
  Alcotest.(check string) "holds renders" "holds"
    (Fmt.str "%a" Check.pp_outcome Check.Holds);
  Alcotest.(check bool) "violation renders state" true
    (let rendered =
       Fmt.str "%a" Check.pp_outcome (Check.Fails (Check.Deadlock s))
     in
     String.length rendered > 0)

let test_program_pp () =
  let rendered = Fmt.str "%a" Program.pp Detcor_systems.Memory.masking in
  Alcotest.(check bool) "program renders actions" true
    (String.length rendered > 40)

let suite =
  ( "misc (printers, edges, umbrella)",
    [
      Alcotest.test_case "value pp" `Quick test_value_pp;
      Alcotest.test_case "expr pp" `Quick test_expr_pp;
      Alcotest.test_case "state pp" `Quick test_state_pp;
      Alcotest.test_case "trace suffix edges" `Quick test_trace_suffix_edges;
      Alcotest.test_case "stats edges" `Quick test_stats_edges;
      Alcotest.test_case "monitor intervals" `Quick test_monitor_interval_semantics;
      Alcotest.test_case "injector none" `Quick test_injector_none;
      Alcotest.test_case "umbrella module" `Quick test_umbrella_module;
      Alcotest.test_case "check pp" `Quick test_check_pp;
      Alcotest.test_case "program pp" `Quick test_program_pp;
    ] )
