(* Randomized soundness properties over the whole pipeline.

   A generator of small random guarded-command programs (two booleans and
   one small integer), random fault classes and random invariants drives
   metamorphic properties that must hold for *every* system:

   - the fault span contains the invariant states and is closed in p[]F;
   - a masking verdict implies a fail-safe verdict (obligation subset);
   - synthesized fail-safe programs only ever strengthen guards, and
     their reports verify;
   - Theorem 3.4 never reports premises-hold with a failing conclusion
     (the soundness contract), across random base/refinement pairs built
     by guard strengthening;
   - the detector-conjunction lemma validates on random detector pairs. *)

open Detcor_kernel
open Detcor_semantics
open Detcor_spec
open Detcor_core

let vars = [ ("a", Domain.boolean); ("b", Domain.boolean); ("n", Domain.range 0 2) ]

(* Random predicates over the three variables, by index. *)
let pred_of_seed seed =
  let mask = seed land 0xfff in
  Pred.make (Fmt.str "P%d" mask) (fun st ->
      let a = Value.as_bool (State.get st "a") in
      let b = Value.as_bool (State.get st "b") in
      let n = Value.as_int (State.get st "n") in
      let bit k = (mask lsr k) land 1 = 1 in
      (* a small decision table over the 12-state space *)
      let ix = (if a then 1 else 0) + (if b then 2 else 0) + (4 * n) in
      bit (ix mod 12))

type rand_assign =
  | Set_a of bool
  | Set_b of bool
  | Set_n of int
  | Flip_a
  | Inc_n

let apply_assign st = function
  | Set_a v -> State.set st "a" (Value.bool v)
  | Set_b v -> State.set st "b" (Value.bool v)
  | Set_n v -> State.set st "n" (Value.int v)
  | Flip_a ->
    State.set st "a" (Value.bool (not (Value.as_bool (State.get st "a"))))
  | Inc_n ->
    State.set st "n"
      (Value.int (min 2 (Value.as_int (State.get st "n") + 1)))

let assign_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun v -> Set_a v) bool;
        map (fun v -> Set_b v) bool;
        map (fun v -> Set_n v) (int_range 0 2);
        return Flip_a;
        return Inc_n;
      ])

type rand_action = {
  guard_seed : int;
  assigns : rand_assign list;
}

let action_gen =
  QCheck.Gen.(
    map2
      (fun guard_seed assigns -> { guard_seed; assigns })
      (int_range 0 4095)
      (list_size (int_range 1 2) assign_gen))

type rand_program = {
  acts : rand_action list;
  invariant_seed : int;
  bad_seed : int;
  fault_var : int; (* which variable the fault corrupts *)
}

let program_gen =
  QCheck.Gen.(
    map
      (fun (acts, invariant_seed, bad_seed, fault_var) ->
        { acts; invariant_seed; bad_seed; fault_var })
      (quad
         (list_size (int_range 1 3) action_gen)
         (int_range 0 4095) (int_range 0 4095) (int_range 0 2)))

let rand_program_print rp =
  Fmt.str "{actions=%d inv=%d bad=%d fault=%d}" (List.length rp.acts)
    rp.invariant_seed rp.bad_seed rp.fault_var

let program_arb = QCheck.make ~print:rand_program_print program_gen

let build rp =
  let action i (ra : rand_action) =
    Action.deterministic
      (Fmt.str "a%d" i)
      (pred_of_seed ra.guard_seed)
      (fun st -> List.fold_left apply_assign st ra.assigns)
  in
  Program.make ~name:"random" ~vars ~actions:(List.mapi action rp.acts)

let fault_of rp =
  let x, d = List.nth vars rp.fault_var in
  Fault.corrupt_variable x d

let spec_of rp =
  Spec.make ~name:"random-spec"
    ~safety:(Safety.never (pred_of_seed rp.bad_seed))
    ()

(* Invariants must be nonempty to be meaningful; weaken empty draws to
   true. *)
let invariant_of rp p =
  let candidate = pred_of_seed rp.invariant_seed in
  if List.exists (Pred.holds candidate) (Program.states p) then candidate
  else Pred.true_

let prop_span_closed =
  Util.qtest ~count:100 "fault span contains S and is closed" program_arb
    (fun rp ->
      let p = build rp in
      let invariant = invariant_of rp p in
      let span = Tolerance.fault_span p ~faults:(fault_of rp) ~from:invariant in
      let s_states =
        List.filter (Pred.holds invariant) (Program.states p)
      in
      List.for_all (Pred.holds span.pred) s_states
      && Check.holds (Check.closed span.ts_pf span.pred))

let prop_masking_implies_failsafe =
  Util.qtest ~count:60 "masking verdict implies fail-safe verdict" program_arb
    (fun rp ->
      let p = build rp in
      let invariant = invariant_of rp p in
      let spec = spec_of rp in
      let faults = fault_of rp in
      let masking =
        Tolerance.verdict (Tolerance.is_masking p ~spec ~invariant ~faults)
      in
      let failsafe =
        Tolerance.verdict (Tolerance.is_failsafe p ~spec ~invariant ~faults)
      in
      (not masking) || failsafe)

let prop_synthesis_sound =
  Util.qtest ~count:60 "synthesized fail-safe programs verify and restrict"
    program_arb (fun rp ->
      let p = build rp in
      let invariant = invariant_of rp p in
      let spec = spec_of rp in
      match
        Detcor_synthesis.Synthesize.add_failsafe p ~spec ~invariant
          ~faults:(fault_of rp)
      with
      | Error _ -> true (* refusing is always sound *)
      | Ok r ->
        Detcor_core.Tolerance.verdict r.report
        && (* every synthesized action's guard implies the original's *)
        List.for_all
          (fun ac' ->
            match Program.find_action p (Action.name ac') with
            | None -> false
            | Some ac ->
              List.for_all
                (fun st ->
                  (not (Action.enabled ac' st)) || Action.enabled ac st)
                (Program.states p))
          (Program.actions r.program))

(* Random refinement pairs: the refined program restricts each action of
   the base by a random predicate (tagged based_on), which makes the
   encapsulation premise true by construction; Theorem 3.4's soundness
   contract must then never be violated. *)
let prop_theorem_3_4_contract =
  let pair_gen =
    QCheck.Gen.(pair program_gen (list_size (int_range 1 3) (int_range 0 4095)))
  in
  let pair_arb =
    QCheck.make
      ~print:(fun (rp, seeds) ->
        Fmt.str "%s restricted by %a" (rand_program_print rp)
          Fmt.(Dump.list int) seeds)
      pair_gen
  in
  Util.qtest ~count:60 "Theorem 3.4 soundness contract on random pairs"
    pair_arb (fun (rp, seeds) ->
      let base = build rp in
      let restricted =
        Program.make ~name:"restricted" ~vars
          ~actions:
            (List.mapi
               (fun i ac ->
                 let seed = List.nth seeds (i mod List.length seeds) in
                 Action.restrict (pred_of_seed seed) ac
                 |> Action.rename (Fmt.str "r%d" i)
                 |> fun a ->
                 (* re-tag with provenance *)
                 Action.make
                   ~based_on:(Action.name ac)
                   (Action.name a) (Action.guard a)
                   (fun st -> Action.execute ac st))
               (Program.actions base))
      in
      let invariant = invariant_of rp base in
      let sspec = Safety.never (pred_of_seed rp.bad_seed) in
      let schema =
        Theorems.theorem_3_4 ~base ~refined:restricted ~sspec ~invariant ()
      in
      Theorems.validates schema)

(* Detector conjunction is an unconditional lemma: validates() must hold
   for arbitrary detector pairs on arbitrary systems. *)
let prop_conjunction_contract =
  let gen = QCheck.Gen.(triple program_gen (int_range 0 4095) (int_range 0 4095)) in
  let arb =
    QCheck.make
      ~print:(fun (rp, z1, z2) ->
        Fmt.str "%s Z1=%d Z2=%d" (rand_program_print rp) z1 z2)
      gen
  in
  Util.qtest ~count:80 "detector conjunction contract on random systems" arb
    (fun (rp, s1, s2) ->
      let p = build rp in
      let ts = Ts.full p in
      let d1 =
        Detector.make ~name:"d1" ~witness:(pred_of_seed s1)
          ~detection:(pred_of_seed (s1 lxor 17)) ()
      in
      let d2 =
        Detector.make ~name:"d2" ~witness:(pred_of_seed s2)
          ~detection:(pred_of_seed (s2 lxor 33)) ()
      in
      Compose.validates (Compose.conjunction_schema ts d1 d2))

let suite =
  ( "randomized soundness",
    [
      prop_span_closed;
      prop_masking_implies_failsafe;
      prop_synthesis_sound;
      prop_theorem_3_4_contract;
      prop_conjunction_contract;
    ] )
