(* Tests for Detcor_semantics: transition-system construction, graph
   algorithms (cross-validated against brute force), weak fairness,
   leads-to, closure, convergence, traces. *)

open Detcor_kernel
open Detcor_semantics

(* Brute-force reachability on an edge list. *)
let brute_reachable n edges from =
  let reach = Array.make n false in
  List.iter (fun i -> reach.(i) <- true) from;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (i, j) ->
        if reach.(i) && not reach.(j) then begin
          reach.(j) <- true;
          changed := true
        end)
      edges
  done;
  reach

(* Brute-force SCC membership: i ~ j iff mutually reachable. *)
let brute_same_scc n edges i j =
  let ri = brute_reachable n edges [ i ] and rj = brute_reachable n edges [ j ] in
  ri.(j) && rj.(i)

let build_graph n edges =
  let p = Util.graph_program n edges in
  Ts.build p ~from:(List.init n Util.node_state)

let test_ts_exploration () =
  let ts = build_graph 4 [ (0, 1); (1, 2) ] in
  Alcotest.(check int) "all seeded states recorded" 4 (Ts.num_states ts);
  let ts2 =
    Ts.build (Util.graph_program 4 [ (0, 1); (1, 2) ]) ~from:[ Util.node_state 0 ]
  in
  Alcotest.(check int) "only reachable recorded" 3 (Ts.num_states ts2)

let test_ts_limit () =
  Alcotest.(check bool) "limit enforced" true
    (try
       ignore
         (Ts.build ~limit:2
            (Util.graph_program 5 [ (0, 1); (1, 2); (2, 3); (3, 4) ])
            ~from:[ Util.node_state 0 ]);
       false
     with Ts.Too_large 2 -> true)

let test_ts_full () =
  let p = Util.graph_program 3 [] in
  Alcotest.(check int) "full space" 3 (Ts.num_states (Ts.full p))

let test_ts_actions () =
  let ts = build_graph 3 [ (0, 1); (1, 2) ] in
  Alcotest.(check int) "two actions" 2 (Ts.num_actions ts);
  Alcotest.(check bool) "action id lookup" true (Ts.action_id ts "e0_0_1" <> None);
  Alcotest.(check (list int)) "ids of names" [ 0 ]
    (Ts.action_ids_of_names ts [ "e0_0_1" ]);
  let i = Option.get (Ts.index_of ts (Util.node_state 2)) in
  Alcotest.(check bool) "2 deadlocked" true (Ts.deadlocked ts i);
  let j = Option.get (Ts.index_of ts (Util.node_state 0)) in
  Alcotest.(check bool) "0 live" false (Ts.deadlocked ts j)

let test_reachable () =
  let ts = build_graph 5 [ (0, 1); (1, 2); (3, 4) ] in
  let from = [ Option.get (Ts.index_of ts (Util.node_state 0)) ] in
  let r = Graph.reachable ts ~from in
  let at k = r.(Option.get (Ts.index_of ts (Util.node_state k))) in
  Alcotest.(check bool) "0->2" true (at 2);
  Alcotest.(check bool) "not 0->3" false (at 3)

let test_co_reachable () =
  let ts = build_graph 4 [ (0, 1); (1, 2); (3, 2) ] in
  let target = [ Option.get (Ts.index_of ts (Util.node_state 2)) ] in
  let r = Graph.co_reachable ts ~target in
  let at k = r.(Option.get (Ts.index_of ts (Util.node_state k))) in
  Alcotest.(check bool) "0 co-reaches 2" true (at 0);
  Alcotest.(check bool) "3 co-reaches 2" true (at 3)

let test_sccs () =
  let ts = build_graph 5 [ (0, 1); (1, 0); (1, 2); (2, 3); (3, 2); (4, 4) ] in
  let sccs = Graph.sccs ts in
  let nontrivial = List.filter (fun (c : Graph.scc) -> not c.trivial) sccs in
  Alcotest.(check int) "three nontrivial sccs" 3 (List.length nontrivial);
  Alcotest.(check int) "five components total" 3
    (List.length (List.filter (fun (c : Graph.scc) -> List.length c.members >= 1 && not c.trivial) sccs))

let test_scc_trivial_self_loop () =
  let ts = build_graph 2 [ (0, 0) ] in
  let sccs = Graph.sccs ts in
  let with0 =
    List.find
      (fun (c : Graph.scc) ->
        List.exists
          (fun v -> State.equal (Ts.state ts v) (Util.node_state 0))
          c.members)
      sccs
  in
  Alcotest.(check bool) "self-loop is nontrivial" false with0.trivial

(* Fairness: two actions, one enabled everywhere with no internal edge. *)
let test_fairness_forces_exit () =
  (* Node variable x in 0..1: action loop: x=0 -> x:=0 (self-loop);
     action exit: x=0 -> x:=1.  Weak fairness forces exit eventually, so
     no fair run stays in x=0. *)
  let stay =
    Action.deterministic "stay"
      (Pred.make "x=0" (fun st -> Value.equal (State.get st "x") (Value.int 0)))
      (fun st -> st)
  in
  let exit_ =
    Action.deterministic "exit"
      (Pred.make "x=0" (fun st -> Value.equal (State.get st "x") (Value.int 0)))
      (fun st -> State.set st "x" (Value.int 1))
  in
  let p =
    Program.make ~name:"fair" ~vars:[ ("x", Domain.range 0 1) ]
      ~actions:[ stay; exit_ ]
  in
  let ts = Ts.build p ~from:[ State.of_list [ ("x", Value.int 0) ] ] in
  let region i = Value.equal (State.get (Ts.state ts i) "x") (Value.int 0) in
  Alcotest.(check bool) "no fair run within x=0" true
    (Fairness.fair_run_exists ts ~region ~from:[ 0 ] = None);
  (* Without the exit action, the self-loop is a fair run. *)
  let p2 =
    Program.make ~name:"unfair" ~vars:[ ("x", Domain.range 0 1) ]
      ~actions:[ stay ]
  in
  let ts2 = Ts.build p2 ~from:[ State.of_list [ ("x", Value.int 0) ] ] in
  Alcotest.(check bool) "self-loop alone is fair" true
    (Fairness.fair_run_exists ts2
       ~region:(fun i ->
         Value.equal (State.get (Ts.state ts2 i) "x") (Value.int 0))
       ~from:[ 0 ]
    <> None)

let test_fairness_partial_enabledness () =
  (* A cycle 0 -> 1 -> 0 where an escape action is enabled only at node 0:
     the escape is not continuously enabled, so the cycle is fair. *)
  let cyc = Util.graph_program 3 [ (0, 1); (1, 0); (0, 2) ] in
  let ts = Ts.build cyc ~from:[ Util.node_state 0 ] in
  let region i = not (State.equal (Ts.state ts i) (Util.node_state 2)) in
  Alcotest.(check bool) "intermittently enabled escape keeps cycle fair" true
    (Fairness.fair_run_exists ts ~region
       ~from:[ Option.get (Ts.index_of ts (Util.node_state 0)) ]
    <> None)

let node_pred k =
  Pred.make (Fmt.str "at%d" k) (fun st ->
      Value.equal (State.get st "node") (Value.int k))

let test_leads_to () =
  (* 0 -> 1 -> 2 with 2 absorbing: 0 leads to 2. *)
  let ts = build_graph 3 [ (0, 1); (1, 2); (2, 2) ] in
  Util.check_holds "0 ~> 2" (Check.leads_to ts (node_pred 0) (node_pred 2));
  (* With a branch that can avoid 2 forever fairly: fails. *)
  let ts2 = build_graph 4 [ (0, 1); (1, 3); (3, 1); (0, 2) ] in
  Util.check_fails "cycle avoids 2" (Check.leads_to ts2 (node_pred 0) (node_pred 2))

let test_leads_to_deadlock () =
  let ts = build_graph 3 [ (0, 1) ] in
  (* 1 is a deadlock that does not satisfy the target. *)
  Util.check_fails "deadlock before target"
    (Check.leads_to ts (node_pred 0) (node_pred 2))

let test_eventually_trivial () =
  let ts = build_graph 2 [ (0, 1); (1, 1) ] in
  Util.check_holds "eventually node=1" (Check.eventually ts (node_pred 1))

let test_closed () =
  let ts = build_graph 3 [ (0, 1); (1, 2) ] in
  let le1 =
    Pred.make "node<=1" (fun st -> Value.as_int (State.get st "node") <= 1)
  in
  Util.check_fails "node<=1 not closed" (Check.closed ts le1);
  let any = Pred.true_ in
  Util.check_holds "true closed" (Check.closed ts any)

let test_closed_under_actions () =
  let p = Util.graph_program 3 [ (0, 1) ] in
  let le1 =
    Pred.make "node<=1" (fun st -> Value.as_int (State.get st "node") <= 1)
  in
  Util.check_holds "edge 0->1 preserves node<=1"
    (Check.closed_under_actions ~universe:(Program.states p)
       (Program.actions p) le1);
  let p2 = Util.graph_program 3 [ (1, 2) ] in
  Util.check_fails "edge 1->2 violates node<=1"
    (Check.closed_under_actions ~universe:(Program.states p2)
       (Program.actions p2) le1)

let test_hoare_triple () =
  let ts = build_graph 3 [ (0, 1); (1, 2) ] in
  Util.check_holds "{at0} p {at1}"
    (Check.hoare_triple ts ~pre:(node_pred 0) ~post:(node_pred 1));
  Util.check_fails "{at0} p {at2}"
    (Check.hoare_triple ts ~pre:(node_pred 0) ~post:(node_pred 2))

let test_converges () =
  let ts = build_graph 3 [ (0, 1); (1, 2); (2, 2) ] in
  let all = Pred.true_ in
  Util.check_holds "true converges to at2" (Check.converges ts all (node_pred 2));
  (* target not closed: fails *)
  let ts2 = build_graph 3 [ (0, 1); (1, 0) ] in
  Util.check_fails "at1 not closed" (Check.converges ts2 all (node_pred 1))

let test_safety_check () =
  let ts = build_graph 3 [ (0, 1); (1, 2) ] in
  Util.check_fails "bad state found"
    (Check.safety ts
       ~bad_state:(fun st -> Value.equal (State.get st "node") (Value.int 2))
       ~bad_transition:(fun _ _ -> false));
  Util.check_fails "bad transition found"
    (Check.safety ts
       ~bad_state:(fun _ -> false)
       ~bad_transition:(fun s s' ->
         Value.equal (State.get s "node") (Value.int 1)
         && Value.equal (State.get s' "node") (Value.int 2)));
  Util.check_holds "clean system"
    (Check.safety ts ~bad_state:(fun _ -> false) ~bad_transition:(fun _ _ -> false))

let test_deadlock_free () =
  let ts = build_graph 3 [ (0, 1); (1, 0) ] in
  Util.check_holds "cycle region deadlock-free"
    (Check.deadlock_free ts
       ~inside:
         (Pred.make "node<=1" (fun st -> Value.as_int (State.get st "node") <= 1)));
  let ts2 = build_graph 2 [ (0, 1) ] in
  Util.check_fails "1 is a deadlock" (Check.deadlock_free ts2 ~inside:Pred.true_)

let test_trace_basics () =
  let s0 = Util.node_state 0 and s1 = Util.node_state 1 in
  let tr =
    Trace.make ~ending:Trace.Maximal s0 [ { Trace.action = "e"; target = s1 } ]
  in
  Alcotest.(check int) "length" 1 (Trace.length tr);
  Alcotest.check Util.state "final" s1 (Trace.final tr);
  Alcotest.(check (list Util.state)) "states" [ s0; s1 ] (Trace.states tr);
  Alcotest.(check (option int)) "first_index" (Some 1)
    (Trace.first_index tr (node_pred 1));
  Alcotest.(check int) "pairs" 1 (List.length (Trace.pairs tr));
  let suffix = Trace.suffix_from tr 1 in
  Alcotest.check Util.state "suffix start" s1 (Trace.start suffix)

let test_trace_enumerate () =
  let ts =
    Ts.build (Util.graph_program 3 [ (0, 1); (0, 2) ]) ~from:[ Util.node_state 0 ]
  in
  let traces = Trace.enumerate ts ~depth:3 in
  Alcotest.(check int) "two maximal traces" 2 (List.length traces);
  Alcotest.(check bool) "all maximal" true
    (List.for_all (fun t -> Trace.ending t = Trace.Maximal) traces)

(* Properties: Tarjan and BFS agree with brute force on random graphs. *)
let n_prop = 6

let prop_reachability =
  Util.qtest ~count:150 "BFS reachability = brute force" (Util.graph_arb n_prop)
    (fun edges ->
      let ts = build_graph n_prop edges in
      let from0 = [ Option.get (Ts.index_of ts (Util.node_state 0)) ] in
      let fast = Graph.reachable ts ~from:from0 in
      let slow = brute_reachable n_prop edges [ 0 ] in
      List.for_all
        (fun k ->
          fast.(Option.get (Ts.index_of ts (Util.node_state k))) = slow.(k))
        (List.init n_prop Fun.id))

let prop_scc =
  Util.qtest ~count:150 "Tarjan = brute-force SCC" (Util.graph_arb n_prop)
    (fun edges ->
      let ts = build_graph n_prop edges in
      let ids, _ = Graph.scc_ids ts in
      let id k = ids.(Option.get (Ts.index_of ts (Util.node_state k))) in
      List.for_all
        (fun i ->
          List.for_all
            (fun j -> id i = id j = brute_same_scc n_prop edges i j)
            (List.init n_prop Fun.id))
        (List.init n_prop Fun.id))

let prop_co_reachable =
  Util.qtest ~count:150 "co-reachability = reversed brute force"
    (Util.graph_arb n_prop) (fun edges ->
      let ts = build_graph n_prop edges in
      let target = [ Option.get (Ts.index_of ts (Util.node_state 0)) ] in
      let fast = Graph.co_reachable ts ~target in
      let reversed = List.map (fun (i, j) -> (j, i)) edges in
      let slow = brute_reachable n_prop reversed [ 0 ] in
      List.for_all
        (fun k ->
          fast.(Option.get (Ts.index_of ts (Util.node_state k))) = slow.(k))
        (List.init n_prop Fun.id))

(* Cross-validation of the fairness-based leads-to checker against direct
   trace semantics: on ACYCLIC graphs every maximal computation is finite,
   fairness is vacuous, and [leads_to p q] holds iff every maximal trace
   satisfies the obligation.  Random DAGs are generated by orienting edges
   upward. *)
let prop_leads_to_vs_traces =
  let n = 5 in
  let dag_arb =
    QCheck.map
      (fun pairs ->
        List.filter_map
          (fun (a, b) ->
            let i = min a b and j = max a b in
            if i = j then None else Some (i, j))
          pairs)
      (QCheck.list_of_size (QCheck.Gen.int_range 0 8)
         (QCheck.pair (QCheck.int_range 0 (n - 1)) (QCheck.int_range 0 (n - 1))))
  in
  Util.qtest ~count:150 "leads-to = trace semantics on DAGs" dag_arb
    (fun edges ->
      let ts =
        Ts.build (Util.graph_program n edges) ~from:[ Util.node_state 0 ]
      in
      let p = node_pred 1 and q = node_pred 3 in
      let fast = Check.holds (Check.leads_to ts p q) in
      let traces = Trace.enumerate ts ~depth:(2 * n) in
      let slow =
        List.for_all
          (fun tr ->
            let states = Trace.states tr in
            let rec satisfied = function
              | [] -> true
              | st :: rest ->
                if Pred.holds p st && not (Pred.holds q st) then
                  List.exists (Pred.holds q) rest && satisfied rest
                else satisfied rest
            in
            satisfied states)
          traces
      in
      fast = slow)

let test_dot_export () =
  let ts = build_graph 3 [ (0, 1); (1, 2) ] in
  let dot =
    Dot.to_string
      ~style:
        {
          Dot.highlight = [ (node_pred 0, "palegreen") ];
          dashed_actions = [ "e1_1_2" ];
          show_action_labels = true;
        }
      ts
  in
  Alcotest.(check bool) "digraph header" true
    (String.length dot > 10 && String.sub dot 0 7 = "digraph");
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "highlight present" true (contains "palegreen" dot);
  Alcotest.(check bool) "dashed fault edge" true (contains "style=dashed" dot);
  Alcotest.(check bool) "action label" true (contains "e0_0_1" dot)

let suite =
  ( "semantics",
    [
      Alcotest.test_case "dot export" `Quick test_dot_export;
      prop_leads_to_vs_traces;
      Alcotest.test_case "exploration" `Quick test_ts_exploration;
      Alcotest.test_case "exploration limit" `Quick test_ts_limit;
      Alcotest.test_case "full space" `Quick test_ts_full;
      Alcotest.test_case "actions and deadlocks" `Quick test_ts_actions;
      Alcotest.test_case "reachable" `Quick test_reachable;
      Alcotest.test_case "co-reachable" `Quick test_co_reachable;
      Alcotest.test_case "sccs" `Quick test_sccs;
      Alcotest.test_case "self-loop scc" `Quick test_scc_trivial_self_loop;
      Alcotest.test_case "fairness forces exit" `Quick test_fairness_forces_exit;
      Alcotest.test_case "partial enabledness" `Quick test_fairness_partial_enabledness;
      Alcotest.test_case "leads-to" `Quick test_leads_to;
      Alcotest.test_case "leads-to deadlock" `Quick test_leads_to_deadlock;
      Alcotest.test_case "eventually" `Quick test_eventually_trivial;
      Alcotest.test_case "closure" `Quick test_closed;
      Alcotest.test_case "closure under actions" `Quick test_closed_under_actions;
      Alcotest.test_case "hoare triples" `Quick test_hoare_triple;
      Alcotest.test_case "converges" `Quick test_converges;
      Alcotest.test_case "safety" `Quick test_safety_check;
      Alcotest.test_case "deadlock-free" `Quick test_deadlock_free;
      Alcotest.test_case "trace basics" `Quick test_trace_basics;
      Alcotest.test_case "trace enumerate" `Quick test_trace_enumerate;
      prop_reachability;
      prop_scc;
      prop_co_reachable;
    ] )
