(* Tests for Detcor_spec: safety as bad states/transitions, liveness
   obligations, the paper's named specifications (closure, generalized
   pairs, converges-to, detects, corrects) and trace semantics. *)

open Detcor_kernel
open Detcor_semantics
open Detcor_spec

let node_pred k =
  Pred.make (Fmt.str "at%d" k) (fun st ->
      Value.equal (State.get st "node") (Value.int k))

let build n edges =
  Ts.build (Util.graph_program n edges) ~from:[ Util.node_state 0 ]

let trace_of_nodes nodes =
  match nodes with
  | [] -> invalid_arg "trace_of_nodes"
  | first :: rest ->
    Trace.make ~ending:Trace.Maximal (Util.node_state first)
      (List.map (fun k -> { Trace.action = "e"; target = Util.node_state k }) rest)

let test_safety_never () =
  let s = Safety.never (node_pred 2) in
  Alcotest.(check bool) "bad state flagged" true
    (Safety.bad_state s (Util.node_state 2));
  Alcotest.(check bool) "good state ok" false
    (Safety.bad_state s (Util.node_state 1));
  Util.check_fails "ts reaching 2 violates" (Safety.check (build 3 [ (0, 1); (1, 2) ]) s);
  Util.check_holds "ts avoiding 2 ok" (Safety.check (build 3 [ (0, 1) ]) s)

let test_safety_closure () =
  let le1 = Pred.make "node<=1" (fun st -> Value.as_int (State.get st "node") <= 1) in
  let s = Safety.closure_of le1 in
  Alcotest.(check bool) "leaving transition bad" true
    (Safety.bad_transition s (Util.node_state 1) (Util.node_state 2));
  Alcotest.(check bool) "entering transition fine" false
    (Safety.bad_transition s (Util.node_state 2) (Util.node_state 1))

let test_safety_pair () =
  let s = Safety.generalized_pair (node_pred 0) (node_pred 1) in
  Alcotest.(check bool) "0 -> 2 is bad" true
    (Safety.bad_transition s (Util.node_state 0) (Util.node_state 2));
  Alcotest.(check bool) "0 -> 1 is fine" false
    (Safety.bad_transition s (Util.node_state 0) (Util.node_state 1));
  Alcotest.(check bool) "1 -> 2 unconstrained" false
    (Safety.bad_transition s (Util.node_state 1) (Util.node_state 2))

let test_safety_conj () =
  let a = Safety.never (node_pred 1) and b = Safety.never (node_pred 2) in
  let c = Safety.conj a b in
  Alcotest.(check bool) "either bad state" true (Safety.bad_state c (Util.node_state 1));
  Alcotest.(check bool) "other bad state" true (Safety.bad_state c (Util.node_state 2));
  Alcotest.(check bool) "top is clean" false
    (Safety.bad_state Safety.top (Util.node_state 1))

let test_safety_trace () =
  let s = Safety.never (node_pred 2) in
  Alcotest.(check (option int)) "violation index" (Some 2)
    (Safety.first_violation_in_trace (trace_of_nodes [ 0; 1; 2 ]) s);
  Alcotest.(check (option int)) "clean trace" None
    (Safety.first_violation_in_trace (trace_of_nodes [ 0; 1; 1 ]) s);
  let pair = Safety.generalized_pair (node_pred 0) (node_pred 1) in
  Alcotest.(check (option int)) "bad transition index" (Some 1)
    (Safety.first_violation_in_trace (trace_of_nodes [ 0; 2 ]) pair);
  Alcotest.(check bool) "maintains = no violation" true
    (Safety.maintains (trace_of_nodes [ 0; 1 ]) pair)

let test_liveness_check () =
  let live = Liveness.leads_to (node_pred 0) (node_pred 2) in
  Util.check_holds "ts satisfying" (Liveness.check (build 3 [ (0, 1); (1, 2); (2, 2) ]) live);
  Util.check_fails "deadlocked short" (Liveness.check (build 3 [ (0, 1) ]) live)

let test_liveness_trace () =
  let live = Liveness.leads_to (node_pred 0) (node_pred 2) in
  Alcotest.(check (option bool)) "satisfied maximal" (Some true)
    (Liveness.check_trace (trace_of_nodes [ 0; 1; 2 ]) live);
  Alcotest.(check (option bool)) "failed maximal" (Some false)
    (Liveness.check_trace (trace_of_nodes [ 0; 1; 1 ]) live);
  let truncated =
    Trace.make ~ending:Trace.Truncated (Util.node_state 0)
      [ { Trace.action = "e"; target = Util.node_state 1 } ]
  in
  Alcotest.(check (option bool)) "pending truncated" None
    (Liveness.check_trace truncated live);
  (* Repeated triggers: every occurrence must be answered. *)
  Alcotest.(check (option bool)) "second trigger unanswered" (Some false)
    (Liveness.check_trace (trace_of_nodes [ 0; 2; 0; 1 ]) live);
  Alcotest.(check (option bool)) "both triggers answered" (Some true)
    (Liveness.check_trace (trace_of_nodes [ 0; 2; 0; 2 ]) live)

let test_spec_closure () =
  let le1 = Pred.make "node<=1" (fun st -> Value.as_int (State.get st "node") <= 1) in
  Util.check_fails "closure violated" (Spec.refines (build 3 [ (0, 1); (1, 2) ]) (Spec.closure le1));
  Util.check_holds "closure holds" (Spec.refines (build 3 [ (0, 1); (1, 0) ]) (Spec.closure le1))

let test_spec_converges_to () =
  let spec = Spec.converges_to Pred.true_ (node_pred 2) in
  Util.check_holds "converges" (Spec.refines (build 3 [ (0, 1); (1, 2); (2, 2) ]) spec);
  Util.check_fails "2 not closed" (Spec.refines (build 3 [ (0, 1); (1, 2); (2, 0) ]) spec)

(* The detects specification on hand-built systems. *)
let witness = node_pred 2 (* Z: we are at node 2 *)

let detection =
  Pred.make "node>=1" (fun st -> Value.as_int (State.get st "node") >= 1)

let detects_spec = Spec.detects ~witness ~detection

let test_detects_holds () =
  (* 0 (X false) -> 1 (X true) -> 2 (X, Z) -> 2: safe, stable, progress. *)
  Util.check_holds "detects satisfied"
    (Spec.refines (build 3 [ (0, 1); (1, 2); (2, 2) ]) detects_spec)

let test_detects_safeness_violated () =
  (* Node 2 (Z true) with X redefined to node>=3: Z without X. *)
  let bad = Spec.detects ~witness ~detection:(Pred.make "node>=3" (fun st -> Value.as_int (State.get st "node") >= 3)) in
  Util.check_fails "safeness violated"
    (Spec.refines (build 3 [ (0, 1); (1, 2); (2, 2) ]) bad)

let test_detects_progress_violated () =
  (* 1 loops on itself fairly without reaching 2 while X stays true. *)
  Util.check_fails "progress violated"
    (Spec.refines (build 3 [ (0, 1); (1, 1) ]) detects_spec)

let test_detects_stability_violated () =
  (* 2 -> 1: Z falsified while X remains true. *)
  Util.check_fails "stability violated"
    (Spec.refines (build 3 [ (0, 1); (1, 2); (2, 1) ]) detects_spec)

let test_corrects () =
  let corr = Spec.corrects ~witness ~detection in
  (* Convergence additionally requires X closed and eventually reached. *)
  Util.check_holds "corrects satisfied"
    (Spec.refines (build 3 [ (0, 1); (1, 2); (2, 2) ]) corr);
  (* X not closed: 1 -> 0 leaves X. *)
  Util.check_fails "convergence closure violated"
    (Spec.refines (build 3 [ (0, 1); (1, 0); (1, 2); (2, 2) ]) corr)

let test_smallest_safety () =
  let spec = Spec.converges_to Pred.true_ (node_pred 2) in
  let ss = Spec.smallest_safety_containing spec in
  (* The liveness obligation is dropped: a system that never reaches 2 but
     keeps 2 closed satisfies SSPEC. *)
  Util.check_holds "SSPEC ignores liveness"
    (Spec.refines (build 2 [ (0, 1); (1, 0) ]) ss);
  Util.check_fails "SSPEC keeps closure"
    (Spec.refines (build 3 [ (0, 2); (2, 0) ]) ss)

let test_tolerance_names () =
  Alcotest.(check string) "masking" "masking" (Fmt.str "%a" Spec.pp_tolerance Spec.Masking);
  Alcotest.(check bool) "parse failsafe" true
    (Spec.tolerance_of_string "fail-safe" = Some Spec.Failsafe);
  Alcotest.(check bool) "parse nonmasking" true
    (Spec.tolerance_of_string "nonmasking" = Some Spec.Nonmasking);
  Alcotest.(check bool) "parse junk" true (Spec.tolerance_of_string "junk" = None)

let test_spec_trace () =
  let spec =
    Spec.make ~name:"t"
      ~safety:(Safety.never (node_pred 3))
      ~liveness:(Liveness.eventually (node_pred 2))
      ()
  in
  Alcotest.(check (option bool)) "safety violation decided" (Some false)
    (Spec.check_trace (trace_of_nodes [ 0; 3 ]) spec);
  Alcotest.(check (option bool)) "satisfied" (Some true)
    (Spec.check_trace (trace_of_nodes [ 0; 1; 2 ]) spec);
  Alcotest.(check (option bool)) "liveness failed on maximal" (Some false)
    (Spec.check_trace (trace_of_nodes [ 0; 1 ]) spec)

(* Property: a trace satisfies cl(S) iff S never goes true-then-false. *)
let prop_closure_trace =
  Util.qtest ~count:200 "cl(S) trace semantics"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 8) (QCheck.int_range 0 3))
    (fun nodes ->
      QCheck.assume (nodes <> []);
      let le1 =
        Pred.make "node<=1" (fun st -> Value.as_int (State.get st "node") <= 1)
      in
      let tr = trace_of_nodes nodes in
      let holds = Safety.trace_satisfies tr (Safety.closure_of le1) in
      let rec brute seen_true = function
        | [] -> true
        | k :: rest ->
          let v = k <= 1 in
          if seen_true && not v then false else brute (seen_true || v) rest
      in
      holds = brute false nodes)

let suite =
  ( "spec",
    [
      Alcotest.test_case "safety never" `Quick test_safety_never;
      Alcotest.test_case "safety closure" `Quick test_safety_closure;
      Alcotest.test_case "generalized pair" `Quick test_safety_pair;
      Alcotest.test_case "safety conjunction" `Quick test_safety_conj;
      Alcotest.test_case "safety on traces" `Quick test_safety_trace;
      Alcotest.test_case "liveness check" `Quick test_liveness_check;
      Alcotest.test_case "liveness on traces" `Quick test_liveness_trace;
      Alcotest.test_case "closure spec" `Quick test_spec_closure;
      Alcotest.test_case "converges-to spec" `Quick test_spec_converges_to;
      Alcotest.test_case "detects holds" `Quick test_detects_holds;
      Alcotest.test_case "detects safeness" `Quick test_detects_safeness_violated;
      Alcotest.test_case "detects progress" `Quick test_detects_progress_violated;
      Alcotest.test_case "detects stability" `Quick test_detects_stability_violated;
      Alcotest.test_case "corrects" `Quick test_corrects;
      Alcotest.test_case "smallest safety" `Quick test_smallest_safety;
      Alcotest.test_case "tolerance names" `Quick test_tolerance_names;
      Alcotest.test_case "spec on traces" `Quick test_spec_trace;
      prop_closure_trace;
    ] )
