(* Tests for Detcor_core on the paper's memory-access example
   (Sections 3.3, 4.3, 5.1 — Figures 1-3): tolerance verdicts, detection
   predicates, detector/corrector checks, refinement, fault spans,
   component extraction, and the theorem schemas with negative controls. *)

open Detcor_kernel
open Detcor_semantics
open Detcor_spec
open Detcor_core
open Detcor_systems

let verdict p tol =
  Tolerance.verdict
    (Tolerance.check p ~spec:Memory.spec ~invariant:Memory.s
       ~faults:Memory.page_fault ~tol)

(* The paper's Figure 1-3 verdict matrix. *)
let test_verdict_matrix () =
  let expect name p failsafe nonmasking masking =
    Alcotest.(check bool) (name ^ " failsafe") failsafe (verdict p Spec.Failsafe);
    Alcotest.(check bool) (name ^ " nonmasking") nonmasking (verdict p Spec.Nonmasking);
    Alcotest.(check bool) (name ^ " masking") masking (verdict p Spec.Masking)
  in
  expect "p" Memory.intolerant false false false;
  expect "pf" Memory.failsafe true false false;
  expect "pn" Memory.nonmasking false true false;
  expect "pm" Memory.masking true true true

let test_report_details () =
  let r =
    Tolerance.is_failsafe Memory.intolerant ~spec:Memory.spec
      ~invariant:Memory.s ~faults:Memory.page_fault
  in
  Alcotest.(check bool) "failure list nonempty" true (Tolerance.failures r <> []);
  Alcotest.(check bool) "span larger than invariant" true (r.span_size > r.invariant_size)

let test_classify () =
  let reports =
    Tolerance.classify Memory.masking ~spec:Memory.spec ~invariant:Memory.s
      ~faults:Memory.page_fault
  in
  Alcotest.(check int) "three classes" 3 (List.length reports);
  Alcotest.(check bool) "all hold for pm" true
    (List.for_all (fun (_, r) -> Tolerance.verdict r) reports)

let test_fault_span () =
  let span =
    Tolerance.fault_span Memory.failsafe ~faults:Memory.page_fault
      ~from:Memory.s
  in
  (* The span is closed under program and fault actions. *)
  Util.check_holds "span closed in p[]F"
    (Check.closed span.ts_pf span.pred);
  (* Every S state is in the span. *)
  Alcotest.(check bool) "S => span" true
    (List.for_all (Pred.holds span.pred)
       (List.filter (Pred.holds Memory.s) (Program.states Memory.failsafe)));
  (* The span contains post-fault states outside S. *)
  Alcotest.(check bool) "span exceeds S" true
    (List.exists (fun st -> not (Pred.holds Memory.s st)) span.states)

let test_weakest_detection_predicate () =
  let sspec = Spec.safety (Spec.smallest_safety_containing Memory.spec) in
  let read = Option.get (Program.find_action Memory.intolerant "p_read") in
  let wdp = Detection_predicate.weakest ~sspec read in
  let present_bot =
    State.of_list [ ("present", Value.bool true); ("data", Value.bot) ]
  in
  let absent_bot =
    State.of_list [ ("present", Value.bool false); ("data", Value.bot) ]
  in
  let absent_bad =
    State.of_list [ ("present", Value.bool false); ("data", Memory.bad) ]
  in
  Alcotest.(check bool) "safe when present" true (Pred.holds wdp present_bot);
  Alcotest.(check bool) "unsafe when absent" false (Pred.holds wdp absent_bot);
  (* Reading when data is already bad cannot *set* it bad: safe. *)
  Alcotest.(check bool) "vacuously safe when already bad" true
    (Pred.holds wdp absent_bad);
  (* X1 is a detection predicate of p_read (the paper's choice). *)
  Alcotest.(check bool) "X1 is a detection predicate" true
    (Detection_predicate.is_detection_predicate ~sspec read Memory.x1
       ~universe:(Program.states Memory.intolerant))

let test_detector_satisfies () =
  Util.check_holds "Z1 detects X1 in pf from U1"
    (Detector.satisfies Memory.failsafe Memory.pf_detector ~from:Memory.t);
  (* The intolerant program has no witness machinery: with Z1 = false the
     Progress obligation fails (X1 true forever, Z1 never). *)
  Util.check_fails "p is not that detector"
    (Detector.satisfies Memory.intolerant Memory.pf_detector ~from:Memory.t)

let test_detector_tolerant () =
  let r =
    Detector.tolerant Memory.failsafe Memory.pf_detector
      ~faults:Memory.page_fault ~tol:Spec.Failsafe ~from:Memory.t
  in
  Alcotest.(check bool) "pf fail-safe tolerant detector" true (Detector.verdict r);
  let m =
    Detector.tolerant Memory.masking Memory.pm_detector
      ~faults:Memory.page_fault ~tol:Spec.Masking ~from:Memory.t
  in
  Alcotest.(check bool) "pm masking tolerant detector" true (Detector.verdict m)

let test_corrector_satisfies () =
  Util.check_holds "X1 corrects X1 in pn from U1"
    (Corrector.satisfies Memory.nonmasking Memory.pn_corrector ~from:Memory.t);
  (* pf never restores the page: convergence fails. *)
  Util.check_fails "pf is not a corrector of X1"
    (Corrector.satisfies Memory.failsafe Memory.pn_corrector ~from:Memory.t)

let test_corrector_tolerant () =
  let r =
    Corrector.tolerant Memory.nonmasking Memory.pn_corrector
      ~faults:Memory.page_fault ~tol:Spec.Nonmasking ~from:Memory.s
  in
  Alcotest.(check bool) "pn nonmasking tolerant corrector" true (Corrector.verdict r)

let test_corrector_as_detector () =
  let d = Corrector.as_detector Memory.pn_corrector in
  Alcotest.(check bool) "witness preserved" true
    (Pred.holds (Detector.witness d) (State.of_list [ ("present", Value.bool true) ]))

let test_refinement () =
  let r = Refinement.check ~base:Memory.intolerant Memory.failsafe ~from:Memory.s in
  Alcotest.(check bool) "pf refines p from S" true (Refinement.ok r);
  let r2 = Refinement.check ~base:Memory.nonmasking Memory.masking ~from:Memory.s in
  Alcotest.(check bool) "pm refines pn from S" true (Refinement.ok r2);
  (* A program writing values p never writes does not refine p. *)
  let rogue =
    Program.make ~name:"rogue" ~vars:(Program.var_decls Memory.intolerant)
      ~actions:
        [
          Action.deterministic "w" Pred.true_ (fun st ->
              State.set st "data" Memory.bad);
        ]
  in
  let r3 = Refinement.check ~base:Memory.intolerant rogue ~from:Memory.s in
  Alcotest.(check bool) "rogue does not refine p" false (Refinement.ok r3)

let test_refinement_divergence () =
  (* A refined program that stutters forever on the base variables while
     the base must move: divergence must be flagged. *)
  let base =
    Program.make ~name:"mover"
      ~vars:[ ("x", Domain.range 0 1) ]
      ~actions:
        [
          Action.deterministic "go"
            (Pred.make "x=0" (fun st -> Value.equal (State.get st "x") (Value.int 0)))
            (fun st -> State.set st "x" (Value.int 1));
        ]
  in
  let lazy_ =
    Program.make ~name:"lazy"
      ~vars:[ ("x", Domain.range 0 1); ("t", Domain.boolean) ]
      ~actions:
        [
          Action.deterministic "tick" Pred.true_ (fun st ->
              State.set st "t"
                (Value.bool (not (Value.as_bool (State.get st "t")))));
        ]
  in
  let r = Refinement.check ~base lazy_ ~from:Pred.true_ in
  Alcotest.(check bool) "divergence flagged" false (Refinement.ok r)

let sspec_mem = Spec.safety (Spec.smallest_safety_containing Memory.spec)

let test_extraction_detector () =
  let ts = Ts.of_pred Memory.failsafe ~from:Memory.s in
  let extracted = Extraction.detectors ~base:Memory.intolerant ~sspec:sspec_mem ts in
  Alcotest.(check int) "one per base action" 1 (List.length extracted);
  let e = List.hd extracted in
  Alcotest.(check string) "for p_read" "p_read" e.for_action;
  Alcotest.(check string) "via pf2" "pf2" e.refined_action;
  Util.check_holds "extracted detector valid" e.outcome

let test_extraction_missing_action () =
  let empty =
    Program.make ~name:"empty" ~vars:(Program.var_decls Memory.failsafe)
      ~actions:[ Action.skip "noop" ]
  in
  let ts = Ts.of_pred empty ~from:Memory.s in
  let read = Option.get (Program.find_action Memory.intolerant "p_read") in
  let e = Extraction.detector_for_action ~base:Memory.intolerant ~sspec:sspec_mem ts read in
  Util.check_fails "missing refinement detected" e.outcome

let test_extraction_corrector () =
  let ts = Ts.of_pred Memory.nonmasking ~from:Memory.t in
  let e = Extraction.corrector_for_invariant ts ~invariant:Memory.x1 in
  Util.check_holds "corrector extracted from pn" e.outcome

let test_project_invariant () =
  let ts = Ts.of_pred Memory.masking ~from:Memory.t in
  let s_p = Extraction.project_invariant ~base:Memory.nonmasking ts ~invariant:Memory.s in
  (* S_p ignores the z1 variable: any state agreeing with an S state on
     present/data satisfies it. *)
  let st =
    State.of_list
      [ ("present", Value.bool true); ("data", Value.bot); ("z1", Value.bool false) ]
  in
  Alcotest.(check bool) "S_p holds modulo z1" true (Pred.holds s_p st)

(* ------------------------------------------------------------------ *)
(* Theorem schemas on the paper's systems.                             *)
(* ------------------------------------------------------------------ *)

let check_schema name schema =
  Alcotest.(check bool)
    (Fmt.str "%s: %a" name Theorems.pp_schema schema)
    true (Theorems.holds schema)

let test_theorem_3_4 () =
  check_schema "thm 3.4 on pf"
    (Theorems.theorem_3_4 ~base:Memory.intolerant ~refined:Memory.failsafe
       ~sspec:sspec_mem ~invariant:Memory.s ())

let test_lemma_3_5 () =
  check_schema "lemma 3.5 on pf"
    (Theorems.lemma_3_5 ~base:Memory.intolerant ~refined:Memory.failsafe
       ~sspec:sspec_mem ~invariant:Memory.s ())

let test_theorem_3_6 () =
  check_schema "thm 3.6 on pf"
    (Theorems.theorem_3_6 ~base:Memory.intolerant ~refined:Memory.failsafe
       ~spec:Memory.spec ~faults:Memory.page_fault ~invariant_s:Memory.s
       ~invariant_r:Memory.s ())

let test_theorem_4_1 () =
  check_schema "thm 4.1 on pn"
    (Theorems.theorem_4_1 ~base:Memory.intolerant ~refined:Memory.nonmasking
       ~spec:Memory.spec ~invariant_s:Memory.s ~from_t:Memory.t ())

let test_lemma_4_2 () =
  check_schema "lemma 4.2 on pn"
    (Theorems.lemma_4_2 ~base:Memory.intolerant ~refined:Memory.nonmasking
       ~spec:Memory.spec ~invariant_s:Memory.s ~invariant_r:Memory.s
       ~from_t:Memory.t ())

let test_theorem_4_3 () =
  check_schema "thm 4.3 on pn"
    (Theorems.theorem_4_3 ~base:Memory.intolerant ~refined:Memory.nonmasking
       ~spec:Memory.spec ~faults:Memory.page_fault ~invariant_s:Memory.s
       ~invariant_r:Memory.s ())

let test_theorem_5_2 () =
  check_schema "thm 5.2 on pm"
    (Theorems.theorem_5_2 ~program:Memory.masking ~spec:Memory.spec
       ~invariant_s:Memory.s ~from_t:Memory.t ())

let test_theorem_5_5 () =
  check_schema "thm 5.5 on pm over pn"
    (Theorems.theorem_5_5 ~base:Memory.nonmasking ~refined:Memory.masking
       ~spec:Memory.spec ~faults:Memory.page_fault ~invariant_s:Memory.s
       ~invariant_r:Memory.s ())

(* Negative controls: schemas on the wrong programs must report failed
   premises, and must never report premises-hold with failed conclusions
   (the soundness contract). *)

let test_schema_negative_controls () =
  let t36_wrong =
    Theorems.theorem_3_6 ~base:Memory.intolerant ~refined:Memory.nonmasking
      ~spec:Memory.spec ~faults:Memory.page_fault ~invariant_s:Memory.s
      ~invariant_r:Memory.s ()
  in
  Alcotest.(check bool) "pn premise fails for 3.6" false
    (Theorems.premises_hold t36_wrong);
  Alcotest.(check bool) "3.6 soundness contract" true (Theorems.validates t36_wrong);
  let t43_wrong =
    Theorems.theorem_4_3 ~base:Memory.intolerant ~refined:Memory.failsafe
      ~spec:Memory.spec ~faults:Memory.page_fault ~invariant_s:Memory.s
      ~invariant_r:Memory.s ()
  in
  Alcotest.(check bool) "pf premise fails for 4.3" false
    (Theorems.premises_hold t43_wrong);
  Alcotest.(check bool) "4.3 soundness contract" true (Theorems.validates t43_wrong)

(* A deliberately broken pf (detector removed: access unguarded) must lose
   its fail-safe verdict, and Theorem 3.6's premises must reject it. *)
let broken_pf =
  Program.make ~name:"pf-broken" ~vars:(Program.var_decls Memory.failsafe)
    ~actions:
      [
        Action.deterministic "pf1"
          (Pred.and_ Memory.x1 (Pred.not_ Memory.z1))
          (fun st -> State.set st "z1" (Value.bool true));
        (Option.get (Program.find_action Memory.intolerant "p_read")
        |> Action.rename "pf2");
      ]

let test_broken_detector () =
  Alcotest.(check bool) "broken pf not fail-safe" false
    (Tolerance.verdict
       (Tolerance.is_failsafe broken_pf ~spec:Memory.spec ~invariant:Memory.s
          ~faults:Memory.page_fault));
  let schema =
    Theorems.theorem_3_6 ~base:Memory.intolerant ~refined:broken_pf
      ~spec:Memory.spec ~faults:Memory.page_fault ~invariant_s:Memory.s
      ~invariant_r:Memory.s ()
  in
  Alcotest.(check bool) "premises reject broken pf" false
    (Theorems.premises_hold schema);
  Alcotest.(check bool) "soundness contract on broken pf" true
    (Theorems.validates schema)

(* A broken pn (corrector removed) must lose its nonmasking verdict. *)
let broken_pn =
  Program.make ~name:"pn-broken" ~vars:(Program.var_decls Memory.nonmasking)
    ~actions:
      [
        (Option.get (Program.find_action Memory.nonmasking "pn2")
        |> Action.rename "pn2");
      ]

let test_broken_corrector () =
  Alcotest.(check bool) "broken pn not nonmasking" false
    (Tolerance.verdict
       (Tolerance.is_nonmasking broken_pn ~spec:Memory.spec ~invariant:Memory.s
          ~faults:Memory.page_fault))

let test_fault_composition () =
  let composed = Fault.compose Memory.intolerant Memory.page_fault in
  Alcotest.(check int) "actions are unioned" 2
    (List.length (Program.actions composed));
  let u = Fault.union Memory.page_fault Fault.none in
  Alcotest.(check int) "union with none" 1 (List.length (Fault.actions u));
  Alcotest.(check (list string)) "action names" [ "F:page-fault" ]
    (Fault.action_names Memory.page_fault)

let suite =
  ( "core (memory access, Figures 1-3)",
    [
      Alcotest.test_case "verdict matrix" `Quick test_verdict_matrix;
      Alcotest.test_case "report details" `Quick test_report_details;
      Alcotest.test_case "classify" `Quick test_classify;
      Alcotest.test_case "fault span" `Quick test_fault_span;
      Alcotest.test_case "weakest detection predicate" `Quick
        test_weakest_detection_predicate;
      Alcotest.test_case "detector satisfies" `Quick test_detector_satisfies;
      Alcotest.test_case "tolerant detector" `Quick test_detector_tolerant;
      Alcotest.test_case "corrector satisfies" `Quick test_corrector_satisfies;
      Alcotest.test_case "tolerant corrector" `Quick test_corrector_tolerant;
      Alcotest.test_case "corrector as detector" `Quick test_corrector_as_detector;
      Alcotest.test_case "refinement" `Quick test_refinement;
      Alcotest.test_case "refinement divergence" `Quick test_refinement_divergence;
      Alcotest.test_case "detector extraction" `Quick test_extraction_detector;
      Alcotest.test_case "extraction missing action" `Quick
        test_extraction_missing_action;
      Alcotest.test_case "corrector extraction" `Quick test_extraction_corrector;
      Alcotest.test_case "invariant projection" `Quick test_project_invariant;
      Alcotest.test_case "theorem 3.4" `Quick test_theorem_3_4;
      Alcotest.test_case "lemma 3.5" `Quick test_lemma_3_5;
      Alcotest.test_case "theorem 3.6" `Quick test_theorem_3_6;
      Alcotest.test_case "theorem 4.1" `Quick test_theorem_4_1;
      Alcotest.test_case "lemma 4.2" `Quick test_lemma_4_2;
      Alcotest.test_case "theorem 4.3" `Quick test_theorem_4_3;
      Alcotest.test_case "theorem 5.2" `Quick test_theorem_5_2;
      Alcotest.test_case "theorem 5.5" `Quick test_theorem_5_5;
      Alcotest.test_case "schema negative controls" `Quick
        test_schema_negative_controls;
      Alcotest.test_case "broken detector rejected" `Quick test_broken_detector;
      Alcotest.test_case "broken corrector rejected" `Quick test_broken_corrector;
      Alcotest.test_case "fault composition" `Quick test_fault_composition;
    ] )
