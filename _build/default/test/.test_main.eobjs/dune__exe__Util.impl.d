test/util.ml: Action Alcotest Detcor_kernel Detcor_semantics Domain Fmt List Pred Program QCheck QCheck_alcotest State Value
