test/test_termination.ml: Alcotest Detcor_core Detcor_kernel Detcor_semantics Detcor_spec Detcor_systems Detector Fmt List Pred Spec Termination Tolerance Util
