test/test_lang.ml: Action Alcotest Array Ast Detcor_core Detcor_kernel Detcor_lang Detcor_spec Elaborate Filename Fmt Lexer List Option Parser Pred Program State String Sys Token Util Value
