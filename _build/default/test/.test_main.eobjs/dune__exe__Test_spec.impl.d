test/test_spec.ml: Alcotest Detcor_kernel Detcor_semantics Detcor_spec Fmt List Liveness Pred QCheck Safety Spec State Trace Ts Util Value
