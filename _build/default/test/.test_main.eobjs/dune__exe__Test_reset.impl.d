test/test_reset.ml: Alcotest Corrector Detcor_core Detcor_kernel Detcor_semantics Detcor_systems Distributed_reset Fmt Fun List Pred State Theorems Tolerance Util Value
