test/test_semantics.ml: Action Alcotest Array Check Detcor_kernel Detcor_semantics Domain Dot Fairness Fmt Fun Graph List Option Pred Program QCheck State String Trace Ts Util Value
