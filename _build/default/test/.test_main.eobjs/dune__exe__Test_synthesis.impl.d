test/test_synthesis.ml: Action Alcotest Detcor_core Detcor_kernel Detcor_spec Detcor_synthesis Detcor_systems Fault Fmt List Memory Pred Program Spec State Synthesize Tmr Token_ring Tolerance Value
