test/test_sim.ml: Alcotest Detcor_kernel Detcor_semantics Detcor_sim Detcor_spec Detcor_systems Injector List Memory Monitor Pred Random Runner Scheduler State Stats Token_ring Value
