test/test_kernel.ml: Action Alcotest Detcor_kernel Detcor_systems Domain Expr List Memory Option Pred Program QCheck QCheck_alcotest State Util Value
