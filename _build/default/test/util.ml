(* Shared helpers and generators for the test suite. *)

open Detcor_kernel

let check_holds msg outcome =
  Alcotest.(check bool)
    (Fmt.str "%s: %a" msg Detcor_semantics.Check.pp_outcome outcome)
    true
    (Detcor_semantics.Check.holds outcome)

let check_fails msg outcome =
  Alcotest.(check bool) msg false (Detcor_semantics.Check.holds outcome)

let state = Alcotest.testable State.pp State.equal

let value = Alcotest.testable Value.pp Value.equal

(* QCheck generator for values. *)
let value_gen =
  QCheck.Gen.(
    oneof
      [
        map Value.int (int_range (-5) 5);
        map Value.bool bool;
        map Value.sym (oneofl [ "a"; "b"; "bot" ]);
      ])

let value_arb = QCheck.make ~print:Value.to_string value_gen

(* States over a fixed small set of variables. *)
let state_gen vars =
  QCheck.Gen.(
    let bind_var x = map (fun v -> (x, v)) value_gen in
    map State.of_list (flatten_l (List.map bind_var vars)))

let state_arb vars = QCheck.make ~print:State.to_string (state_gen vars)

(* Random directed graphs as programs over one variable [node : 0..n-1];
   each edge (i, j) becomes an action.  Used to cross-validate the graph
   algorithms against brute force. *)
let graph_program n edges =
  let actions =
    List.mapi
      (fun idx (i, j) ->
        Action.deterministic
          (Fmt.str "e%d_%d_%d" idx i j)
          (Pred.make (Fmt.str "at%d" i) (fun st ->
               Value.equal (State.get st "node") (Value.int i)))
          (fun st -> State.set st "node" (Value.int j)))
      edges
  in
  Program.make ~name:"graph"
    ~vars:[ ("node", Domain.range 0 (n - 1)) ]
    ~actions

let node_state i = State.of_list [ ("node", Value.int i) ]

let edges_gen n =
  QCheck.Gen.(
    let edge = pair (int_range 0 (n - 1)) (int_range 0 (n - 1)) in
    list_size (int_range 0 (2 * n)) edge)

let graph_arb n =
  QCheck.make
    ~print:(fun edges ->
      Fmt.str "%a"
        Fmt.(list ~sep:(any "; ") (pair ~sep:(any "->") int int))
        edges)
    (edges_gen n)

let qtest ?(count = 200) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)
