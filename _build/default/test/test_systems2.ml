(* Tests for the additional case-study systems from the paper's
   introduction: barrier computation and leader election. *)

open Detcor_kernel
open Detcor_spec
open Detcor_core
open Detcor_systems

(* ------------------------------------------------------------------ *)
(* Barrier                                                             *)
(* ------------------------------------------------------------------ *)

let bcfg = Barrier.default

let barrier_verdict p ~invariant tol =
  Tolerance.verdict
    (Tolerance.check p ~spec:(Barrier.spec bcfg) ~invariant
       ~faults:(Barrier.phase_loss bcfg) ~tol)

let test_barrier_correct_fault_free () =
  let _, out_tol =
    Tolerance.refines_from (Barrier.tolerant bcfg) ~spec:(Barrier.spec bcfg)
      ~invariant:(Barrier.invariant bcfg)
  in
  Util.check_holds "tolerant barrier refines SPEC from window" out_tol;
  let _, out_int =
    Tolerance.refines_from (Barrier.intolerant bcfg) ~spec:(Barrier.spec bcfg)
      ~invariant:(Barrier.intolerant_invariant bcfg)
  in
  Util.check_holds "cached-witness barrier refines SPEC fault-free" out_int

let test_barrier_stale_witness_breaks () =
  (* The cached witness goes stale after a restart: not even fail-safe. *)
  Alcotest.(check bool) "intolerant barrier not fail-safe" false
    (barrier_verdict (Barrier.intolerant bcfg)
       ~invariant:(Barrier.intolerant_invariant bcfg)
       Spec.Failsafe)

let test_barrier_masking () =
  Alcotest.(check bool) "fresh-witness barrier masking" true
    (barrier_verdict (Barrier.tolerant bcfg) ~invariant:(Barrier.invariant bcfg)
       Spec.Masking);
  Alcotest.(check bool) "fresh-witness barrier fail-safe" true
    (barrier_verdict (Barrier.tolerant bcfg) ~invariant:(Barrier.invariant bcfg)
       Spec.Failsafe)

let test_barrier_detector_extraction () =
  (* Theorem 3.4's extraction finds, for each unguarded advance, the
     detector the tolerant barrier contains. *)
  let sspec =
    Spec.safety (Spec.smallest_safety_containing (Barrier.spec bcfg))
  in
  let ts =
    Detcor_semantics.Ts.of_pred (Barrier.tolerant bcfg)
      ~from:(Barrier.invariant bcfg)
  in
  let extracted =
    Extraction.detectors ~base:(Barrier.unguarded bcfg) ~sspec ts
  in
  Alcotest.(check int) "one per advance" 3 (List.length extracted);
  List.iter
    (fun (e : Extraction.extracted_detector) ->
      Util.check_holds (Fmt.str "extracted detector for %s" e.for_action)
        e.outcome)
    extracted

let test_barrier_theorem_3_4 () =
  let sspec =
    Spec.safety (Spec.smallest_safety_containing (Barrier.spec bcfg))
  in
  let schema =
    Theorems.theorem_3_4 ~base:(Barrier.unguarded bcfg)
      ~refined:(Barrier.tolerant bcfg) ~sspec ~invariant:(Barrier.invariant bcfg)
      ()
  in
  Alcotest.(check bool)
    (Fmt.str "3.4 on barrier: %a" Theorems.pp_schema schema)
    true (Theorems.holds schema)

let test_barrier_window_dynamics () =
  let st =
    State.of_list
      [ ("ph0", Value.int 1); ("ph1", Value.int 1); ("ph2", Value.int 2) ]
  in
  Alcotest.(check bool) "window holds at spread 1" true
    (Pred.holds (Barrier.window bcfg) st);
  let st' = State.set st "ph2" (Value.int 3) in
  Alcotest.(check bool) "window broken at spread 2" false
    (Pred.holds (Barrier.window bcfg) st');
  Alcotest.(check bool) "laggard is the minimum" true
    (Pred.holds (Barrier.is_minimum bcfg 0) st);
  Alcotest.(check bool) "leader is not" false
    (Pred.holds (Barrier.is_minimum bcfg 2) st)

let test_barrier_multiple_losses () =
  (* Two restarts are still masked by the fresh-witness barrier. *)
  Alcotest.(check bool) "masking under two losses" true
    (Tolerance.verdict
       (Tolerance.check (Barrier.tolerant bcfg) ~spec:(Barrier.spec bcfg)
          ~invariant:(Barrier.invariant bcfg)
          ~faults:(Barrier.phase_loss ~max_losses:2 bcfg)
          ~tol:Spec.Masking))

let test_barrier_config_validation () =
  Alcotest.(check bool) "tiny configs rejected" true
    ((try
        ignore (Barrier.make_config 1);
        false
      with Invalid_argument _ -> true)
    &&
    try
      ignore (Barrier.make_config ~phases:1 3);
      false
    with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Leader election                                                     *)
(* ------------------------------------------------------------------ *)

let lcfg = Leader_election.default

let test_leader_nonmasking () =
  Alcotest.(check bool) "leader election nonmasking" true
    (Tolerance.verdict
       (Tolerance.is_nonmasking (Leader_election.program lcfg)
          ~spec:(Leader_election.spec lcfg)
          ~invariant:(Leader_election.invariant lcfg)
          ~faults:(Leader_election.corruption lcfg)))

let test_leader_is_corrector () =
  Util.check_holds "protocol corrects leadership from anywhere"
    (Corrector.satisfies (Leader_election.program lcfg)
       (Leader_election.corrector lcfg) ~from:Pred.true_)

let test_leader_sizes () =
  List.iter
    (fun n ->
      let c = Leader_election.make_config n in
      Util.check_holds
        (Fmt.str "n=%d corrects leadership" n)
        (Corrector.satisfies (Leader_election.program c)
           (Leader_election.corrector c) ~from:Pred.true_))
    [ 2; 3; 5 ]

let test_leader_fixpoint_unique () =
  (* The only deadlocked states are the elected ones. *)
  let p = Leader_election.program lcfg in
  let deadlocks =
    List.filter (Program.deadlocked p) (Program.states p)
  in
  Alcotest.(check bool) "deadlocks are exactly elected states" true
    (deadlocks <> []
    && List.for_all (Pred.holds (Leader_election.elected lcfg)) deadlocks)

let test_leader_theorem_4_3 () =
  let schema =
    Theorems.theorem_4_3
      ~base:(Leader_election.program lcfg)
      ~refined:(Leader_election.program lcfg)
      ~spec:(Leader_election.spec lcfg)
      ~faults:(Leader_election.corruption lcfg)
      ~invariant_s:(Leader_election.invariant lcfg)
      ~invariant_r:(Leader_election.invariant lcfg) ()
  in
  Alcotest.(check bool)
    (Fmt.str "4.3 on leader election: %a" Theorems.pp_schema schema)
    true (Theorems.holds schema)

let test_leader_stale_max_recovers () =
  (* Corrupt a candidate to the maximum id at the wrong moment: the flood
     still converges (max is the true answer anyway). *)
  let p = Leader_election.program lcfg in
  let corrupted =
    State.of_list
      (List.init lcfg.Leader_election.processes (fun i ->
           ( Leader_election.ldrvar i,
             Value.int (if i = 0 then Leader_election.max_id lcfg else 0) )))
  in
  let ts = Detcor_semantics.Ts.build p ~from:[ corrupted ] in
  Util.check_holds "converges from planted maximum"
    (Detcor_semantics.Check.eventually ts (Leader_election.elected lcfg))

let suite =
  ( "systems 2 (barrier, leader election)",
    [
      Alcotest.test_case "barrier fault-free correctness" `Quick
        test_barrier_correct_fault_free;
      Alcotest.test_case "stale witness breaks barrier" `Quick
        test_barrier_stale_witness_breaks;
      Alcotest.test_case "fresh witness masks" `Quick test_barrier_masking;
      Alcotest.test_case "barrier detector extraction" `Quick
        test_barrier_detector_extraction;
      Alcotest.test_case "barrier theorem 3.4" `Quick test_barrier_theorem_3_4;
      Alcotest.test_case "window dynamics" `Quick test_barrier_window_dynamics;
      Alcotest.test_case "two losses masked" `Slow test_barrier_multiple_losses;
      Alcotest.test_case "barrier config validation" `Quick
        test_barrier_config_validation;
      Alcotest.test_case "leader nonmasking" `Quick test_leader_nonmasking;
      Alcotest.test_case "leader is corrector" `Quick test_leader_is_corrector;
      Alcotest.test_case "leader sizes" `Slow test_leader_sizes;
      Alcotest.test_case "leader unique fixpoint" `Quick test_leader_fixpoint_unique;
      Alcotest.test_case "leader theorem 4.3" `Quick test_leader_theorem_4_3;
      Alcotest.test_case "planted maximum recovers" `Quick
        test_leader_stale_max_recovers;
    ] )
