(* Tests for distributed reset (E14): detector raises, wave corrects. *)

open Detcor_kernel
open Detcor_core
open Detcor_systems

let cfg = Distributed_reset.default
let p = Distributed_reset.program cfg

let test_settled_fault_free () =
  let _, outcome =
    Tolerance.refines_from p ~spec:(Distributed_reset.spec cfg)
      ~invariant:(Distributed_reset.invariant cfg)
  in
  Util.check_holds "reset refines SPEC from settled" outcome

let test_nonmasking () =
  Alcotest.(check bool) "nonmasking tolerant to x corruption" true
    (Tolerance.verdict
       (Tolerance.is_nonmasking p ~spec:(Distributed_reset.spec cfg)
          ~invariant:(Distributed_reset.invariant cfg)
          ~faults:(Distributed_reset.corruption cfg)))

let test_is_corrector () =
  (* From the whole fault span, the protocol corrects 'settled'. *)
  let span =
    Tolerance.fault_span p ~faults:(Distributed_reset.corruption cfg)
      ~from:(Distributed_reset.invariant cfg)
  in
  let ts_p = Detcor_semantics.Ts.build p ~from:span.states in
  Util.check_holds "wave corrects settled"
    (Corrector.satisfies_ts ts_p (Distributed_reset.corrector cfg))

let test_raise_is_a_detector () =
  (* The request flag is the detector's witness; its Progress side: every
     raised request is eventually resolved into the settled predicate
     (checked on the program alone over the whole span — after faults
     stop, per Assumption 2).  Note that Safeness of "req only with
     reason" does NOT hold verbatim: a fault may un-corrupt a cell after
     the raise, leaving a momentarily reasonless request that the wave
     then clears — which is why the nonmasking obligations, not a naive
     implication, are the right specification. *)
  let span =
    Tolerance.fault_span p ~faults:(Distributed_reset.corruption cfg)
      ~from:(Distributed_reset.invariant cfg)
  in
  let ts_p = Detcor_semantics.Ts.build p ~from:span.states in
  let req = Pred.make "req" (fun st -> Value.as_bool (State.get st "req")) in
  Util.check_holds "every request is eventually resolved"
    (Detcor_semantics.Check.leads_to ts_p req (Distributed_reset.invariant cfg))

let test_wave_resets_state () =
  (* Drive one corruption by hand and watch the wave clean it up. *)
  let settled_state =
    State.of_list
      (("req", Value.bool false)
      :: List.concat_map
           (fun i ->
             [
               (Distributed_reset.xvar i, Value.int 0);
               (Distributed_reset.wvar i, Value.sym "idle");
             ])
           (List.init cfg.Distributed_reset.processes Fun.id))
  in
  let corrupted = State.set settled_state (Distributed_reset.xvar 1) (Value.int 1) in
  let ts = Detcor_semantics.Ts.build p ~from:[ corrupted ] in
  Util.check_holds "wave converges to settled"
    (Detcor_semantics.Check.eventually ts (Distributed_reset.invariant cfg));
  Util.check_holds "settled closed"
    (Detcor_semantics.Check.closed ts (Distributed_reset.invariant cfg))

let test_theorem_4_3 () =
  let schema =
    Theorems.theorem_4_3 ~base:p ~refined:p ~spec:(Distributed_reset.spec cfg)
      ~faults:(Distributed_reset.corruption cfg)
      ~invariant_s:(Distributed_reset.invariant cfg)
      ~invariant_r:(Distributed_reset.invariant cfg) ()
  in
  Alcotest.(check bool)
    (Fmt.str "4.3 on reset: %a" Theorems.pp_schema schema)
    true (Theorems.holds schema)

let test_overlapping_waves_refuted () =
  (* The first design of the protocol (root restarts over a draining
     release wave) livelocks: the checker's fair cycle shows waves folding
     completion against stale marks while the corrupted tail is never
     reset. *)
  let r =
    Tolerance.is_nonmasking (Distributed_reset.buggy cfg)
      ~spec:(Distributed_reset.spec cfg)
      ~invariant:(Distributed_reset.invariant cfg)
      ~faults:(Distributed_reset.corruption cfg)
  in
  Alcotest.(check bool) "overlapping waves refuted" false (Tolerance.verdict r);
  match Tolerance.failures r with
  | { outcome = Detcor_semantics.Check.Fails (Detcor_semantics.Check.Fair_cycle _); _ } :: _ ->
    ()
  | _ -> Alcotest.fail "expected a fair-cycle (livelock) counterexample"

let test_sizes () =
  List.iter
    (fun n ->
      let c = Distributed_reset.make_config n in
      Alcotest.(check bool)
        (Fmt.str "n=%d nonmasking" n)
        true
        (Tolerance.verdict
           (Tolerance.is_nonmasking (Distributed_reset.program c)
              ~spec:(Distributed_reset.spec c)
              ~invariant:(Distributed_reset.invariant c)
              ~faults:(Distributed_reset.corruption c))))
    [ 2; 4 ]

let suite =
  ( "distributed reset (E14)",
    [
      Alcotest.test_case "fault-free correctness" `Quick test_settled_fault_free;
      Alcotest.test_case "nonmasking" `Quick test_nonmasking;
      Alcotest.test_case "wave is a corrector" `Quick test_is_corrector;
      Alcotest.test_case "raise is a detector" `Quick test_raise_is_a_detector;
      Alcotest.test_case "wave resets state" `Quick test_wave_resets_state;
      Alcotest.test_case "theorem 4.3" `Quick test_theorem_4_3;
      Alcotest.test_case "overlapping waves refuted" `Quick
        test_overlapping_waves_refuted;
      Alcotest.test_case "line sizes" `Slow test_sizes;
    ] )
