(* Triple modular redundancy (Section 6.1): verification plus fault-
   injection simulation with the SIEFAST-style monitors.

   Run with:  dune exec examples/tmr_demo.exe *)

open Detcor_kernel
open Detcor_spec
open Detcor_core
open Detcor_systems
open Detcor_sim

let header title = Fmt.pr "@.== %s ==@." title

let init =
  State.of_list
    [
      ("x", Value.int 1);
      ("y", Value.int 1);
      ("z", Value.int 1);
      ("out", Value.bot);
    ]

let () =
  header "Verification (IR, DR;IR, DR;IR [] CR)";
  List.iter
    (fun p ->
      List.iter
        (fun tol ->
          let r =
            Tolerance.check p ~spec:Tmr.spec ~invariant:Tmr.invariant
              ~faults:Tmr.one_corruption ~tol
          in
          Fmt.pr "%-12s %-10s %s@." (Program.name p) (Fmt.str "%a" Spec.pp_tolerance tol)
            (if Tolerance.verdict r then "holds" else "fails"))
        Spec.[ Failsafe; Masking ])
    [ Tmr.intolerant; Tmr.failsafe; Tmr.masking ];

  header "Theorem 3.6: DR;IR contains a fail-safe tolerant detector for IR1";
  let schema =
    Theorems.theorem_3_6 ~base:Tmr.intolerant ~refined:Tmr.failsafe
      ~spec:Tmr.spec ~faults:Tmr.one_corruption ~invariant_s:Tmr.invariant
      ~invariant_r:Tmr.invariant ()
  in
  Fmt.pr "%a@." Theorems.pp_schema schema;

  header "Simulation: 200 runs, one random input corruption each";
  let runs =
    Runner.sample 200 Tmr.masking ~faults:Tmr.one_corruption
      ~policy:(Injector.Random { probability = 0.3; max_faults = 1 })
      ~init
  in
  let report =
    Monitor.report runs ~detector:Tmr.detector ~corrector:Tmr.corrector
      ~sspec:(Spec.safety (Spec.smallest_safety_containing Tmr.spec))
  in
  Fmt.pr "%a@." Monitor.pp_report report;

  header "Same workload on the unprotected IR";
  let runs_ir =
    Runner.sample 200 Tmr.intolerant ~faults:Tmr.one_corruption
      ~policy:(Injector.Random { probability = 0.3; max_faults = 1 })
      ~init
  in
  let report_ir =
    Monitor.report runs_ir ~detector:Tmr.detector ~corrector:Tmr.corrector
      ~sspec:(Spec.safety (Spec.smallest_safety_containing Tmr.spec))
  in
  Fmt.pr "%a@." Monitor.pp_report report_ir;
  Fmt.pr
    "@.The masking TMR never violates safety; the intolerant IR does \
     whenever the corruption lands on x before the copy.@."
