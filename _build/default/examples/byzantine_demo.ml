(* Byzantine agreement (Section 6.2): the detector/corrector construction
   for one Byzantine process among four, verified, plus a look at what
   breaks with two Byzantine processes.

   Run with:  dune exec examples/byzantine_demo.exe *)

open Detcor_spec
open Detcor_core
open Detcor_systems

let header title = Fmt.pr "@.== %s ==@." title

let () =
  let cfg = Byzantine.default in
  header
    (Fmt.str "Configuration: general + %d processes, at most 1 Byzantine"
       cfg.Byzantine.non_generals);

  header "Verification ladder: IB -> IB[]DB -> IB[]DB[]CB";
  let check name p invariant tol =
    let r =
      Tolerance.check p ~spec:(Byzantine.spec cfg) ~invariant
        ~faults:(Byzantine.byzantine_faults cfg) ~tol
    in
    Fmt.pr "%-14s %-10s %s@." name (Fmt.str "%a" Spec.pp_tolerance tol)
      (if Tolerance.verdict r then "holds" else "fails")
  in
  check "IB" (Byzantine.intolerant cfg) (Byzantine.invariant_weak cfg) Spec.Failsafe;
  check "IB[]DB" (Byzantine.failsafe cfg) (Byzantine.invariant cfg) Spec.Failsafe;
  check "IB[]DB" (Byzantine.failsafe cfg) (Byzantine.invariant cfg) Spec.Masking;
  check "IB[]DB[]CB" (Byzantine.masking cfg) (Byzantine.invariant cfg) Spec.Failsafe;
  check "IB[]DB[]CB" (Byzantine.masking cfg) (Byzantine.invariant cfg) Spec.Masking;

  header "The components of process 1";
  let d = Byzantine.detector cfg 1 in
  Fmt.pr "detector DB_1:  witness  %s@." (Detcor_kernel.Pred.name (Detector.witness d));
  Fmt.pr "                detects  %s@." (Detcor_kernel.Pred.name (Detector.detection d));
  let c = Byzantine.corrector cfg 1 in
  Fmt.pr "corrector CB_1: corrects %s@."
    (Detcor_kernel.Pred.name (Corrector.correction c));

  header "Masking report for IB[]DB[]CB";
  Fmt.pr "%a@."
    Tolerance.pp_report
    (Tolerance.is_masking (Byzantine.masking cfg) ~spec:(Byzantine.spec cfg)
       ~invariant:(Byzantine.invariant cfg)
       ~faults:(Byzantine.byzantine_faults cfg));

  header "Why the detector matters: IB alone under one Byzantine general";
  let r =
    Tolerance.is_failsafe (Byzantine.intolerant cfg) ~spec:(Byzantine.spec cfg)
      ~invariant:(Byzantine.invariant_weak cfg)
      ~faults:(Byzantine.byzantine_faults cfg)
  in
  Fmt.pr "%a@." Tolerance.pp_report r;
  Fmt.pr
    "@.The counterexample above is the classic scenario: the Byzantine \
     general sends different values and unguarded outputs disagree.@."
