(* Dijkstra's token ring as a corrector (concluding remarks of the paper):
   self-stabilization = 'legitimate corrects legitimate', verified for
   several ring sizes, plus measured stabilization times under random
   corruption.

   Run with:  dune exec examples/token_ring_demo.exe *)

open Detcor_kernel
open Detcor_core
open Detcor_systems
open Detcor_sim

let header title = Fmt.pr "@.== %s ==@." title

(* Steps until the trace first satisfies (and then keeps) legitimacy. *)
let stabilization_steps cfg (run : Runner.run) =
  let legit = Token_ring.legitimate cfg in
  Detcor_semantics.Trace.first_index run.trace legit

let () =
  header "Verification across ring sizes";
  List.iter
    (fun n ->
      let cfg = Token_ring.make_config n in
      let p = Token_ring.program cfg in
      let nonmasking =
        Tolerance.is_nonmasking p ~spec:(Token_ring.spec cfg)
          ~invariant:(Token_ring.legitimate cfg)
          ~faults:(Token_ring.corruption cfg)
      in
      let corrector =
        Corrector.satisfies p (Token_ring.corrector cfg) ~from:Pred.true_
      in
      Fmt.pr
        "n=%d (K=%d): nonmasking %-6s | 'legit corrects legit' from true: %a@."
        n cfg.Token_ring.counter_values
        (if Tolerance.verdict nonmasking then "holds" else "fails")
        Detcor_semantics.Check.pp_outcome corrector)
    [ 3; 4; 5 ];

  header "Ring mutual exclusion layered on the ring";
  let mcfg = Ring_mutex.make_config 3 in
  let r =
    Tolerance.is_nonmasking (Ring_mutex.program mcfg) ~spec:(Ring_mutex.spec mcfg)
      ~invariant:(Ring_mutex.invariant mcfg)
      ~faults:(Ring_mutex.corruption mcfg)
  in
  Fmt.pr "ring-mutex (n=3) nonmasking: %s@."
    (if Tolerance.verdict r then "holds" else "fails");

  header "Measured stabilization time (100 random corrupted starts each)";
  List.iter
    (fun n ->
      let cfg = Token_ring.make_config n in
      let p = Token_ring.program cfg in
      let steps =
        List.filter_map
          (fun seed ->
            let rng = Random.State.make [| seed |] in
            let init =
              State.of_list
                (List.init n (fun i ->
                     ( Token_ring.xvar i,
                       Value.int (Random.State.int rng cfg.Token_ring.counter_values) )))
            in
            let run =
              Runner.run
                ~config:{ Runner.default with seed; max_steps = 500 }
                p
                ~injector:(Injector.make Injector.None_ (Token_ring.corruption cfg))
                ~init
            in
            stabilization_steps cfg run)
          (List.init 100 (fun i -> i + 1))
      in
      Fmt.pr "n=%d: %a@." n Stats.pp_option (Stats.summarize steps))
    [ 3; 4; 5; 6 ]
