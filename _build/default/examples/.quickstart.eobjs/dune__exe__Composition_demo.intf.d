examples/composition_demo.mli:
