examples/synthesis_demo.ml: Action Detcor_core Detcor_kernel Detcor_spec Detcor_synthesis Detcor_systems Fault Fmt List Memory Pred Program State Synthesize Tmr Tolerance Value
