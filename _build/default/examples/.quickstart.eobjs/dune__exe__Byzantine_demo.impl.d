examples/byzantine_demo.ml: Byzantine Corrector Detcor_core Detcor_kernel Detcor_spec Detcor_systems Detector Fmt Spec Tolerance
