examples/tmr_demo.ml: Detcor_core Detcor_kernel Detcor_sim Detcor_spec Detcor_systems Fmt Injector List Monitor Program Runner Spec State Theorems Tmr Tolerance Value
