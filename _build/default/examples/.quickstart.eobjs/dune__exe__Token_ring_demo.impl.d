examples/token_ring_demo.ml: Corrector Detcor_core Detcor_kernel Detcor_semantics Detcor_sim Detcor_systems Fmt Injector List Pred Random Ring_mutex Runner State Stats Token_ring Tolerance Value
