examples/composition_demo.ml: Compose Detcor_core Detcor_kernel Detcor_semantics Detcor_spec Detcor_systems Detector Fmt List Memory Multitolerance Pred Spec State Tolerance Value
