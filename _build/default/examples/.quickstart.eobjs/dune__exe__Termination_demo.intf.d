examples/termination_demo.mli:
