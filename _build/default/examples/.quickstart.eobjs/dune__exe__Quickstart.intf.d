examples/quickstart.mli:
