examples/quickstart.ml: Corrector Detcor_core Detcor_kernel Detcor_semantics Detcor_spec Detcor_systems Detector Fmt List Memory Spec Theorems Tolerance
