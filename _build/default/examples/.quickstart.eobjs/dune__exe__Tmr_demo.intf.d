examples/tmr_demo.mli:
