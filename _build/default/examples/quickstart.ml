(* Quickstart: the paper's memory-access example end to end.

   Builds the four programs of Sections 3.3-5.1 (intolerant p, fail-safe
   pf, nonmasking pn, masking pm), checks each against every tolerance
   class, verifies the detector and corrector components the paper
   identifies, and machine-checks Theorem 5.5 on pm.

   Run with:  dune exec examples/quickstart.exe *)

open Detcor_spec
open Detcor_core
open Detcor_systems

let header title = Fmt.pr "@.== %s ==@." title

let () =
  header "Tolerance classification (Figures 1-3)";
  let programs =
    [ Memory.intolerant; Memory.failsafe; Memory.nonmasking; Memory.masking ]
  in
  Fmt.pr "%-6s %-12s %-12s %-12s@." "" "fail-safe" "nonmasking" "masking";
  List.iter
    (fun p ->
      let verdict tol =
        if
          Tolerance.verdict
            (Tolerance.check p ~spec:Memory.spec ~invariant:Memory.s
               ~faults:Memory.page_fault ~tol)
        then "yes"
        else "no"
      in
      Fmt.pr "%-6s %-12s %-12s %-12s@."
        (Detcor_kernel.Program.name p)
        (verdict Spec.Failsafe) (verdict Spec.Nonmasking) (verdict Spec.Masking))
    programs;

  header "The detector of pf (Z1 detects X1)";
  Fmt.pr "pf refines 'Z1 detects X1' from U1: %a@."
    Detcor_semantics.Check.pp_outcome
    (Detector.satisfies Memory.failsafe Memory.pf_detector ~from:Memory.t);
  let r =
    Detector.tolerant Memory.failsafe Memory.pf_detector
      ~faults:Memory.page_fault ~tol:Spec.Failsafe ~from:Memory.t
  in
  Fmt.pr "%a@." Detector.pp_report r;

  header "The corrector of pn (X1 corrects X1)";
  Fmt.pr "pn refines 'X1 corrects X1' from U1: %a@."
    Detcor_semantics.Check.pp_outcome
    (Corrector.satisfies Memory.nonmasking Memory.pn_corrector ~from:Memory.t);

  header "Theorem 5.5 on pm (over base pn)";
  let schema =
    Theorems.theorem_5_5 ~base:Memory.nonmasking ~refined:Memory.masking
      ~spec:Memory.spec ~faults:Memory.page_fault ~invariant_s:Memory.s
      ~invariant_r:Memory.s ()
  in
  Fmt.pr "%a@." Theorems.pp_schema schema;

  header "Full masking report for pm";
  Fmt.pr "%a@."
    Tolerance.pp_report
    (Tolerance.is_masking Memory.masking ~spec:Memory.spec ~invariant:Memory.s
       ~faults:Memory.page_fault)
