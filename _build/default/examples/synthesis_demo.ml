(* Automated addition of fault tolerance (the companion method, ref [4]):
   starting from the fault-intolerant memory access and TMR programs, the
   synthesizer adds detectors (guard strengthening) and correctors
   (ranked recovery), and the result is re-verified.

   The TMR case is the highlight: the synthesized fail-safe guard
   coincides with the paper's hand-designed DR witness (x=y \/ x=z).

   Run with:  dune exec examples/synthesis_demo.exe *)

open Detcor_kernel
open Detcor_core
open Detcor_systems
open Detcor_synthesis

let header title = Fmt.pr "@.== %s ==@." title

let describe name = function
  | Error f -> Fmt.pr "%s: failed — %a@." name Synthesize.pp_failure f
  | Ok (r : Synthesize.result) ->
    Fmt.pr "%s: synthesized %s@." name (Program.name r.program);
    List.iter
      (fun (ac, g) -> Fmt.pr "  added detector on %-8s guard %s@." ac (Pred.name g))
      r.added_detectors;
    if r.recovery_states > 0 then
      Fmt.pr "  added corrector with recovery from %d states@." r.recovery_states;
    Fmt.pr "  re-verified: %s@."
      (if Tolerance.verdict r.report then "holds" else "FAILS")

let () =
  header "Memory access: p + page fault";
  describe "fail-safe"
    (Synthesize.add_failsafe Memory.intolerant ~spec:Memory.spec
       ~invariant:Memory.s ~faults:Memory.page_fault);
  describe "nonmasking"
    (Synthesize.add_nonmasking Memory.intolerant ~spec:Memory.spec
       ~invariant:Memory.s ~faults:Memory.page_fault);
  describe "masking"
    (Synthesize.add_masking Memory.intolerant ~spec:Memory.spec
       ~invariant:Memory.s ~faults:Memory.page_fault);

  header "TMR: IR + one input corruption";
  (match
     Synthesize.add_failsafe Tmr.intolerant ~spec:Tmr.spec
       ~invariant:Tmr.invariant ~faults:Tmr.one_corruption
   with
  | Error f -> Fmt.pr "fail-safe: failed — %a@." Synthesize.pp_failure f
  | Ok r ->
    describe "fail-safe" (Ok r);
    (* Compare the synthesized guard with the paper's DR witness over the
       fault span. *)
    let _, guard = List.hd r.added_detectors in
    let span =
      Tolerance.fault_span Tmr.intolerant ~faults:Tmr.one_corruption
        ~from:Tmr.invariant
    in
    let agree =
      List.for_all
        (fun st ->
          (not (Pred.holds Tmr.out_bot st))
          || Pred.holds guard st = Pred.holds Tmr.dr_witness st)
        span.states
    in
    Fmt.pr
      "  synthesized guard = paper's DR witness (x=y \\/ x=z) on all %d \
       enabled span states: %b@."
      (List.length (List.filter (Pred.holds Tmr.out_bot) span.states))
      agree);
  describe "masking"
    (Synthesize.add_masking ~target:Tmr.out_is_uncor Tmr.intolerant
       ~spec:Tmr.spec ~invariant:Tmr.invariant ~faults:Tmr.one_corruption);

  header "Negative control: an unsynthesizable instance";
  let poison =
    Fault.make "poison"
      [
        Action.deterministic "F:poison" Pred.true_ (fun st ->
            State.set st "data" Memory.bad);
      ]
  in
  let strict_spec =
    Detcor_spec.Spec.make ~name:"strict"
      ~safety:
        (Detcor_spec.Safety.never
           (Pred.make "data=bad" (fun st ->
                Value.equal (State.get st "data") Memory.bad)))
      ()
  in
  describe "fail-safe vs poison"
    (Synthesize.add_failsafe Memory.intolerant ~spec:strict_spec
       ~invariant:Memory.s ~faults:poison)
