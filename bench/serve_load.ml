(* The Table 9i load harness: drive a live [dcheck serve] daemon with a
   mixed job stream — interactive verifies, batch syntheses and
   simulations — under injected worker crashes ([dcheck.job]) and hangs
   ([dcheck.hang]) from the Failpoint environment, and measure the
   client-observed submit-to-terminal latency.  Then kill -9 the daemon
   with batch work in flight, restart it on the same spool, and demand
   the adopted jobs run to completion before a SIGTERM drain (exit 143).

   Reports p50/p99 latency, retry/preemption/watchdog/cache counters
   scraped from the daemon's own registry, and the recovery outcome to
   BENCH_serve.json (EXPERIMENTS.md Table 9i).

   Run with:  dune exec bench/serve_load.exe  (from the repo root) *)

module Proto = Detcor_serve.Proto
module Client = Detcor_serve.Client
module Jsonx = Detcor_obs.Jsonx

let dcheck = ref "_build/default/bin/dcheck.exe"
let corpus = ref "examples/dc"
let out_file = ref "BENCH_serve.json"
let n_jobs = ref 24
let n_clients = ref 6

let usage () =
  prerr_endline
    "usage: serve_load [--dcheck PATH] [--corpus DIR] [--out FILE] [--jobs \
     N] [--clients N]";
  exit 2

let () =
  let rec parse = function
    | [] -> ()
    | "--dcheck" :: v :: rest ->
      dcheck := v;
      parse rest
    | "--corpus" :: v :: rest ->
      corpus := v;
      parse rest
    | "--out" :: v :: rest ->
      out_file := v;
      parse rest
    | "--jobs" :: v :: rest ->
      n_jobs := int_of_string v;
      parse rest
    | "--clients" :: v :: rest ->
      n_clients := int_of_string v;
      parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv))

let read_file path =
  try In_channel.with_open_bin path In_channel.input_all
  with Sys_error _ -> ""

let temp_dir prefix =
  let path = Filename.temp_file prefix ".d" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf p =
  if Sys.is_directory p then begin
    Array.iter (fun f -> rm_rf (Filename.concat p f)) (Sys.readdir p);
    Unix.rmdir p
  end
  else Sys.remove p

(* ------------------------------------------------------------------ *)
(* Daemon management.                                                  *)
(* ------------------------------------------------------------------ *)

let start_daemon ?(env = [||]) ~spool ~log args =
  let fd = Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let pid =
    Unix.create_process_env !dcheck
      (Array.of_list ((!dcheck :: [ "serve"; "--spool"; spool ]) @ args))
      (Array.append (Unix.environment ()) env)
      Unix.stdin fd fd
  in
  Unix.close fd;
  let deadline = Unix.gettimeofday () +. 10.0 in
  let prefix = "dcheck: serving on " in
  let rec wait_addr () =
    if Unix.gettimeofday () > deadline then
      failwith ("daemon never listened; log: " ^ read_file log);
    let listen_line =
      read_file log |> String.split_on_char '\n'
      |> List.find_opt (String.starts_with ~prefix)
    in
    match listen_line with
    | Some line ->
      String.sub line (String.length prefix)
        (String.length line - String.length prefix)
    | None ->
      Unix.sleepf 0.05;
      wait_addr ()
  in
  (pid, wait_addr ())

let rpc addr req =
  match Client.oneshot ~addr req with
  | Ok reply -> reply
  | Error m -> failwith ("rpc failed: " ^ m)

(* ------------------------------------------------------------------ *)
(* The mixed workload.                                                 *)
(* ------------------------------------------------------------------ *)

type done_job = { job : Proto.job; latency_s : float }

(* Round-robin mix: half interactive verifies (three distinct cache
   keys, so repeats hit the result cache), a third batch simulations
   with per-job seeds (all distinct keys), the rest batch syntheses on
   one shared key. *)
let submission i =
  let memory = Filename.concat !corpus "memory.dc" in
  let ring5 = Filename.concat !corpus "ring5.dc" in
  match i mod 6 with
  | 0 | 1 | 2 ->
    let tol = [| "failsafe"; "nonmasking"; "masking" |].(i mod 3) in
    (Proto.Verify, memory, [ "--tolerance"; tol ])
  | 3 | 4 ->
    ( Proto.Simulate,
      ring5,
      [ "--runs"; "100"; "--steps"; "50"; "--seed"; string_of_int i ] )
  | _ -> (Proto.Synthesize, ring5, [ "--tolerance"; "nonmasking" ])

(* Each client thread drains the shared ticket counter: submit, block on
   the result, record the job as the daemon last saw it. *)
let run_load addr =
  let m = Mutex.create () in
  let next = ref 0 in
  let results = ref [] in
  let worker tenant =
    let rec go () =
      let i =
        Mutex.protect m (fun () ->
            let i = !next in
            if i < !n_jobs then incr next;
            i)
      in
      if i < !n_jobs then begin
        let kind, file, argv = submission i in
        let t0 = Unix.gettimeofday () in
        let rec admit () =
          match rpc addr (Proto.Submit { tenant; kind; file; argv }) with
          | Proto.Accepted j -> j
          | Proto.Overloaded { retry_after_s } ->
            (* Admission pushed back; honor the hint and retry the
               same ticket. *)
            Unix.sleepf retry_after_s;
            admit ()
          | _ -> failwith "unexpected submit reply"
        in
        let j = admit () in
        (match rpc addr (Proto.Result { id = j.Proto.id; wait = true }) with
        | Proto.Outcome { job; _ } ->
          let latency_s = Unix.gettimeofday () -. t0 in
          Mutex.protect m (fun () -> results := { job; latency_s } :: !results)
        | _ -> failwith "result --wait did not return an outcome");
        go ()
      end
    in
    go ()
  in
  let threads =
    List.init !n_clients (fun c ->
        Thread.create worker (Printf.sprintf "client-%d" c))
  in
  List.iter Thread.join threads;
  !results

(* ------------------------------------------------------------------ *)
(* Stats and metric scraping.                                          *)
(* ------------------------------------------------------------------ *)

let percentile sorted q =
  match Array.length sorted with
  | 0 -> 0.0
  | n -> sorted.(int_of_float (Float.round (q *. float_of_int (n - 1))))

let counter_of_exposition text name =
  let prefix = name ^ " " in
  String.split_on_char '\n' text
  |> List.find_map (fun line ->
         if String.starts_with ~prefix line then
           float_of_string_opt
             (String.sub line (String.length prefix)
                (String.length line - String.length prefix))
         else None)
  |> Option.value ~default:0.0

let scrape addr =
  match rpc addr Proto.Metrics with
  | Proto.Text t -> t
  | _ -> failwith "metrics verb did not return text"

(* ------------------------------------------------------------------ *)
(* Main.                                                               *)
(* ------------------------------------------------------------------ *)

let () =
  let spool = temp_dir "detcor_serve_bench" in
  let logs = temp_dir "detcor_serve_bench_logs" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun d -> try rm_rf d with Sys_error _ | Unix.Unix_error _ -> ())
        [ spool; logs ])
  @@ fun () ->
  (* Phase 1: mixed load with injected crashing and hanging workers.
     The daemon reseeds DETCOR_FAILPOINTS per attempt, so each spawn
     draws independently. *)
  Fmt.pr "=== Table 9i: serve daemon under mixed load ===@.@.";
  let pid, addr =
    start_daemon
      ~env:[| "DETCOR_FAILPOINTS=dcheck.job=0.15;dcheck.hang=0.08;seed=424242" |]
      ~spool
      ~log:(Filename.concat logs "serve-load.log")
      [ "--slots"; "2"; "--watchdog"; "3"; "--retries"; "2" ]
  in
  let t0 = Unix.gettimeofday () in
  let results = run_load addr in
  let wall_s = Unix.gettimeofday () -. t0 in
  let exposition = scrape addr in
  let c name = int_of_float (counter_of_exposition exposition name) in
  let retried = c "serve_jobs_retried_total" in
  let preempted = c "serve_jobs_preempted_total" in
  let watchdog_kills = c "serve_watchdog_kills_total" in
  let cache_hits = c "serve_cache_hits_total" in
  let cache_misses = c "serve_cache_misses_total" in
  (* Phase 2: kill -9 with batch work in flight, restart, recover. *)
  let in_flight =
    List.map
      (fun (kind, argv) ->
        match
          rpc addr
            (Proto.Submit
               {
                 tenant = "recovery";
                 kind;
                 file = Filename.concat !corpus "ring5.dc";
                 argv;
               })
        with
        | Proto.Accepted j -> j.Proto.id
        | _ -> failwith "recovery submit refused")
      [
        ( Proto.Simulate,
          [ "--runs"; "2000"; "--steps"; "200"; "--seed"; "1001" ] );
        ( Proto.Simulate,
          [ "--runs"; "2000"; "--steps"; "200"; "--seed"; "1002" ] );
      ]
  in
  Unix.sleepf 0.4;
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] pid);
  let pid2, addr2 =
    start_daemon ~spool
      ~log:(Filename.concat logs "serve-recover.log")
      [ "--slots"; "2" ]
  in
  let recovered =
    List.fold_left
      (fun n id ->
        match rpc addr2 (Proto.Result { id; wait = true }) with
        | Proto.Outcome { job; _ } when job.Proto.state = Proto.Done -> n + 1
        | _ -> n)
      0 in_flight
  in
  let adopted =
    int_of_float
      (counter_of_exposition (scrape addr2) "serve_spool_adopted_total")
  in
  (try Unix.kill pid2 Sys.sigterm with Unix.Unix_error _ -> ());
  let _, drain_status = Unix.waitpid [] pid2 in
  let drain_exit =
    match drain_status with Unix.WEXITED c -> c | _ -> -1
  in
  (* Render. *)
  let completed =
    List.filter (fun r -> r.job.Proto.state = Proto.Done) results
  in
  let failed =
    List.filter (fun r -> r.job.Proto.state = Proto.Failed) results
  in
  let lat_ms =
    completed
    |> List.map (fun r -> 1e3 *. r.latency_s)
    |> Array.of_list
  in
  Array.sort compare lat_ms;
  let p50 = percentile lat_ms 0.5
  and p99 = percentile lat_ms 0.99
  and pmax = percentile lat_ms 1.0 in
  Fmt.pr
    "jobs %d (clients %d): %d completed, %d failed in %.1fs wall@."
    !n_jobs !n_clients (List.length completed) (List.length failed) wall_s;
  Fmt.pr "latency p50 %.0f ms  p99 %.0f ms  max %.0f ms@." p50 p99 pmax;
  Fmt.pr
    "recovery arms: retried %d  watchdog kills %d  preempted %d  cache \
     %d/%d hits@."
    retried watchdog_kills preempted cache_hits (cache_hits + cache_misses);
  Fmt.pr
    "kill -9 recovery: %d/%d in-flight jobs recovered (%d spool records \
     adopted), drain exit %d@."
    recovered (List.length in_flight) adopted drain_exit;
  let per_kind kind =
    let ls =
      completed
      |> List.filter (fun r -> r.job.Proto.kind = kind)
      |> List.map (fun r -> 1e3 *. r.latency_s)
      |> Array.of_list
    in
    Array.sort compare ls;
    Jsonx.Obj
      [
        ("kind", Jsonx.Str (Proto.kind_to_string kind));
        ("completed", Jsonx.Int (Array.length ls));
        ("p50_ms", Jsonx.Float (percentile ls 0.5));
        ("p99_ms", Jsonx.Float (percentile ls 0.99));
      ]
  in
  let json =
    Jsonx.Obj
      [
        ("benchmark", Jsonx.Str "Table 9i serve load and recovery");
        ("jobs", Jsonx.Int !n_jobs);
        ("clients", Jsonx.Int !n_clients);
        ("wall_s", Jsonx.Float wall_s);
        ("completed", Jsonx.Int (List.length completed));
        ("failed", Jsonx.Int (List.length failed));
        ("p50_ms", Jsonx.Float p50);
        ("p99_ms", Jsonx.Float p99);
        ("max_ms", Jsonx.Float pmax);
        ("retried_total", Jsonx.Int retried);
        ("watchdog_kills", Jsonx.Int watchdog_kills);
        ("preempted_total", Jsonx.Int preempted);
        ("cache_hits", Jsonx.Int cache_hits);
        ("cache_misses", Jsonx.Int cache_misses);
        ( "recovery",
          Jsonx.Obj
            [
              ("in_flight", Jsonx.Int (List.length in_flight));
              ("recovered", Jsonx.Int recovered);
              ("adopted", Jsonx.Int adopted);
              ("drain_exit", Jsonx.Int drain_exit);
            ] );
        ( "rows",
          Jsonx.List
            (List.map per_kind [ Proto.Verify; Proto.Synthesize; Proto.Simulate ])
        );
      ]
  in
  let oc = open_out !out_file in
  output_string oc (Jsonx.to_string json);
  output_char oc '\n';
  close_out oc;
  Fmt.pr "wrote %s@." !out_file;
  (* The harness's own gate: every accepted job must reach a terminal
     state, the killed daemon's in-flight work must be adopted from the
     spool and recovered, and the drain must exit 143. *)
  if
    List.length completed + List.length failed < !n_jobs
    || recovered < List.length in_flight
    || adopted < List.length in_flight
    || drain_exit <> 143
  then begin
    Fmt.pr "serve load harness FAILED@.";
    exit 1
  end
