(* The benchmark and reproduction harness.

   The paper (Arora & Kulkarni, ICDCS'98) contains no numeric tables; its
   evaluation is the memory-access figures (1-3), the TMR and Byzantine
   constructions of Section 6, and the theory itself.  This harness
   regenerates each of those artifacts as a claims table (experiments
   E1-E9 of DESIGN.md/EXPERIMENTS.md), then times the toolkit with
   Bechamel (E10).

   Run with:  dune exec bench/main.exe *)

open Detcor_kernel
open Detcor_spec
open Detcor_core
open Detcor_systems

let section title = Fmt.pr "@.=== %s ===@.@." title

let verdict_str b = if b then "yes" else "no"

let expect label expected actual =
  let ok = expected = actual in
  Fmt.pr "%-44s paper: %-4s measured: %-4s %s@." label (verdict_str expected)
    (verdict_str actual)
    (if ok then "[match]" else "[MISMATCH]");
  ok

let mismatches = ref 0

let check label expected actual =
  if not (expect label expected actual) then incr mismatches

(* ------------------------------------------------------------------ *)
(* Shared plumbing of the engine-comparison tables (E10b, E11, E12):    *)
(* wall-clock timing and the machine-readable JSON copy each table      *)
(* writes for CI artifacts.                                             *)
(* ------------------------------------------------------------------ *)

module Bench_table = struct
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)

  let time_iters ~iters f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      ignore (f ())
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int iters

  type t = {
    benchmark : string;
    mutable rows : Detcor_obs.Jsonx.t list;
    mutable best_speedup : float;
  }

  let create benchmark = { benchmark; rows = []; best_speedup = 0.0 }

  (* Record one reference-vs-packed row; [extra] carries any
     table-specific fields (phase splits, outcome tags).  [ok] marks the
     row as a successful run — failed rows still record their timings but
     are excluded from [best_speedup], so a fast failure cannot headline
     the table.  Every row also records the process peak RSS at record
     time (VmHWM — monotone over the process lifetime, so within a table
     it reflects the largest run so far) and the packed-side exploration
     rate, so memory cliffs and throughput regressions are visible in
     the JSON artifacts without rerunning.  Returns the speedup for the
     table's own rendering. *)
  let add_row t ~name ~states ~agree ~reference_s ~packed_s ?(ok = true)
      ?(extra = []) () =
    let speedup = reference_s /. packed_s in
    if ok && speedup > t.best_speedup then t.best_speedup <- speedup;
    let states_per_s =
      if packed_s > 0.0 then float_of_int states /. packed_s else 0.0
    in
    let open Detcor_obs in
    t.rows <-
      Jsonx.Obj
        ([
           ("name", Jsonx.Str name);
           ("states", Jsonx.Int states);
           ("agree", Jsonx.Bool agree);
           ("reference_s", Jsonx.Float reference_s);
           ("packed_s", Jsonx.Float packed_s);
           ("speedup", Jsonx.Float speedup);
           ("peak_rss_bytes", Jsonx.Int (Expose.peak_rss_bytes ()));
           ("states_per_s", Jsonx.Float states_per_s);
         ]
        @ extra)
      :: t.rows;
    speedup

  let write t ~file =
    let open Detcor_obs in
    let json =
      Jsonx.Obj
        [
          ("benchmark", Jsonx.Str t.benchmark);
          ("best_speedup", Jsonx.Float t.best_speedup);
          ("rows", Jsonx.List (List.rev t.rows));
        ]
    in
    let oc = open_out file in
    output_string oc (Jsonx.to_string json);
    output_char oc '\n';
    close_out oc;
    Fmt.pr "wrote %s@." file
end

(* ------------------------------------------------------------------ *)
(* E1-E3: the memory-access figures.                                   *)
(* ------------------------------------------------------------------ *)

let table_memory () =
  section "Table 1 (E1-E3): memory access, Figures 1-3";
  let verdict p tol =
    Tolerance.verdict
      (Tolerance.check p ~spec:Memory.spec ~invariant:Memory.s
         ~faults:Memory.page_fault ~tol)
  in
  let row name p f n m =
    check (name ^ " fail-safe") f (verdict p Spec.Failsafe);
    check (name ^ " nonmasking") n (verdict p Spec.Nonmasking);
    check (name ^ " masking") m (verdict p Spec.Masking)
  in
  row "p  (intolerant)" Memory.intolerant false false false;
  row "pf (Figure 1)" Memory.failsafe true false false;
  row "pn (Figure 2)" Memory.nonmasking false true false;
  row "pm (Figure 3)" Memory.masking true true true;
  check "pf is a fail-safe tolerant detector" true
    (Detector.verdict
       (Detector.tolerant Memory.failsafe Memory.pf_detector
          ~faults:Memory.page_fault ~tol:Spec.Failsafe ~from:Memory.t));
  check "pn is a nonmasking tolerant corrector" true
    (Corrector.verdict
       (Corrector.tolerant Memory.nonmasking Memory.pn_corrector
          ~faults:Memory.page_fault ~tol:Spec.Nonmasking ~from:Memory.s));
  check "pm is a masking tolerant detector" true
    (Detector.verdict
       (Detector.tolerant Memory.masking Memory.pm_detector
          ~faults:Memory.page_fault ~tol:Spec.Masking ~from:Memory.t))

(* ------------------------------------------------------------------ *)
(* Theorems: every schema of Sections 3-5 on its paper instance.       *)
(* ------------------------------------------------------------------ *)

let table_theorems () =
  section "Table 2: theorem schemas machine-checked on the paper's systems";
  let sspec = Spec.safety (Spec.smallest_safety_containing Memory.spec) in
  let schemas =
    [
      ( "Theorem 3.4 (pf over p)",
        Theorems.theorem_3_4 ~base:Memory.intolerant ~refined:Memory.failsafe
          ~sspec ~invariant:Memory.s () );
      ( "Lemma 3.5 (pf over p)",
        Theorems.lemma_3_5 ~base:Memory.intolerant ~refined:Memory.failsafe
          ~sspec ~invariant:Memory.s () );
      ( "Theorem 3.6 (pf over p)",
        Theorems.theorem_3_6 ~base:Memory.intolerant ~refined:Memory.failsafe
          ~spec:Memory.spec ~faults:Memory.page_fault ~invariant_s:Memory.s
          ~invariant_r:Memory.s () );
      ( "Theorem 4.1 (pn over p)",
        Theorems.theorem_4_1 ~base:Memory.intolerant ~refined:Memory.nonmasking
          ~spec:Memory.spec ~invariant_s:Memory.s ~from_t:Memory.t () );
      ( "Lemma 4.2 (pn over p)",
        Theorems.lemma_4_2 ~base:Memory.intolerant ~refined:Memory.nonmasking
          ~spec:Memory.spec ~invariant_s:Memory.s ~invariant_r:Memory.s
          ~from_t:Memory.t () );
      ( "Theorem 4.3 (pn over p)",
        Theorems.theorem_4_3 ~base:Memory.intolerant ~refined:Memory.nonmasking
          ~spec:Memory.spec ~faults:Memory.page_fault ~invariant_s:Memory.s
          ~invariant_r:Memory.s () );
      ( "Theorem 5.2 (pm)",
        Theorems.theorem_5_2 ~program:Memory.masking ~spec:Memory.spec
          ~invariant_s:Memory.s ~from_t:Memory.t () );
      ( "Theorem 5.5 (pm over pn)",
        Theorems.theorem_5_5 ~base:Memory.nonmasking ~refined:Memory.masking
          ~spec:Memory.spec ~faults:Memory.page_fault ~invariant_s:Memory.s
          ~invariant_r:Memory.s () );
      ( "Theorem 3.6 (DR;IR over IR)",
        Theorems.theorem_3_6 ~base:Tmr.intolerant ~refined:Tmr.failsafe
          ~spec:Tmr.spec ~faults:Tmr.one_corruption ~invariant_s:Tmr.invariant
          ~invariant_r:Tmr.invariant () );
      ( "Theorem 4.3 (token ring, n=4)",
        let cfg = Token_ring.default in
        Theorems.theorem_4_3 ~base:(Token_ring.program cfg)
          ~refined:(Token_ring.program cfg) ~spec:(Token_ring.spec cfg)
          ~faults:(Token_ring.corruption cfg)
          ~invariant_s:(Token_ring.legitimate cfg)
          ~invariant_r:(Token_ring.legitimate cfg) () );
    ]
  in
  List.iter (fun (name, s) -> check name true (Theorems.holds s)) schemas

(* ------------------------------------------------------------------ *)
(* E4: TMR (Section 6.1).                                              *)
(* ------------------------------------------------------------------ *)

let table_tmr () =
  section "Table 3 (E4): triple modular redundancy, Section 6.1";
  let verdict p tol =
    Tolerance.verdict
      (Tolerance.check p ~spec:Tmr.spec ~invariant:Tmr.invariant
         ~faults:Tmr.one_corruption ~tol)
  in
  check "IR intolerant (fail-safe fails)" false (verdict Tmr.intolerant Spec.Failsafe);
  check "DR;IR fail-safe" true (verdict Tmr.failsafe Spec.Failsafe);
  check "DR;IR not masking (deadlocks on x)" false (verdict Tmr.failsafe Spec.Masking);
  check "DR;IR[]CR masking" true (verdict Tmr.masking Spec.Masking)

(* ------------------------------------------------------------------ *)
(* E5: Byzantine agreement (Section 6.2).                              *)
(* ------------------------------------------------------------------ *)

let table_byzantine () =
  section "Table 4 (E5): Byzantine agreement, Section 6.2 (n=4, f=1)";
  let cfg = Byzantine.default in
  let verdict ?invariant p tol =
    let invariant =
      match invariant with Some i -> i | None -> Byzantine.invariant cfg
    in
    Tolerance.verdict
      (Tolerance.check p ~spec:(Byzantine.spec cfg) ~invariant
         ~faults:(Byzantine.byzantine_faults cfg) ~tol)
  in
  check "IB intolerant (fail-safe fails)" false
    (verdict ~invariant:(Byzantine.invariant_weak cfg) (Byzantine.intolerant cfg)
       Spec.Failsafe);
  check "IB[]DB fail-safe" true (verdict (Byzantine.failsafe cfg) Spec.Failsafe);
  check "IB[]DB not masking (blocked process)" false
    (verdict (Byzantine.failsafe cfg) Spec.Masking);
  check "IB[]DB[]CB masking" true (verdict (Byzantine.masking cfg) Spec.Masking)

(* ------------------------------------------------------------------ *)
(* E6: negative controls.                                              *)
(* ------------------------------------------------------------------ *)

let table_negative () =
  section "Table 5 (E6): negative controls (components removed)";
  let broken_pf =
    Program.make ~name:"pf-broken" ~vars:(Program.var_decls Memory.failsafe)
      ~actions:
        [
          Action.deterministic "pf1"
            (Pred.and_ Memory.x1 (Pred.not_ Memory.z1))
            (fun st -> State.set st "z1" (Value.bool true));
          (Option.get (Program.find_action Memory.intolerant "p_read")
          |> Action.rename "pf2");
        ]
  in
  check "pf without its detector: fail-safe" false
    (Tolerance.verdict
       (Tolerance.is_failsafe broken_pf ~spec:Memory.spec ~invariant:Memory.s
          ~faults:Memory.page_fault));
  let broken_pn =
    Program.make ~name:"pn-broken" ~vars:(Program.var_decls Memory.nonmasking)
      ~actions:[ Option.get (Program.find_action Memory.nonmasking "pn2") ]
  in
  check "pn without its corrector: nonmasking" false
    (Tolerance.verdict
       (Tolerance.is_nonmasking broken_pn ~spec:Memory.spec ~invariant:Memory.s
          ~faults:Memory.page_fault));
  let mcfg = Ring_mutex.make_config 3 in
  check "mutex whose exit keeps the CS: nonmasking" false
    (Tolerance.verdict
       (Tolerance.is_nonmasking (Ring_mutex.broken mcfg)
          ~spec:(Ring_mutex.spec mcfg)
          ~invariant:(Ring_mutex.invariant mcfg)
          ~faults:(Ring_mutex.corruption mcfg)))

(* ------------------------------------------------------------------ *)
(* E6b: the intro's further case studies — barrier and leader           *)
(* election — plus multitolerance and component composition.            *)
(* ------------------------------------------------------------------ *)

let table_substrates () =
  section "Table 5b: barrier, leader election, multitolerance, composition";
  let bcfg = Barrier.default in
  check "barrier with cached witness: fail-safe" false
    (Tolerance.verdict
       (Tolerance.is_failsafe (Barrier.intolerant bcfg) ~spec:(Barrier.spec bcfg)
          ~invariant:(Barrier.intolerant_invariant bcfg)
          ~faults:(Barrier.phase_loss bcfg)));
  check "barrier with fresh detector: masking" true
    (Tolerance.verdict
       (Tolerance.is_masking (Barrier.tolerant bcfg) ~spec:(Barrier.spec bcfg)
          ~invariant:(Barrier.invariant bcfg)
          ~faults:(Barrier.phase_loss bcfg)));
  let lcfg = Leader_election.default in
  check "leader election: nonmasking (self-corrector)" true
    (Tolerance.verdict
       (Tolerance.is_nonmasking (Leader_election.program lcfg)
          ~spec:(Leader_election.spec lcfg)
          ~invariant:(Leader_election.invariant lcfg)
          ~faults:(Leader_election.corruption lcfg)));
  check "pm multitolerant (masking+page, nonmasking+corruption)" true
    (Multitolerance.verdict
       (Multitolerance.check Memory.masking ~spec:Memory.spec
          ~invariant:Memory.s
          ~requirements:
            [
              { Multitolerance.fault = Memory.page_fault; tol = Spec.Masking };
              {
                Multitolerance.fault = Memory.data_corruption;
                tol = Spec.Nonmasking;
              };
            ]));
  let ts = Detcor_semantics.Ts.of_pred Memory.masking ~from:Memory.t in
  let populated =
    Pred.make "data#bot" (fun st ->
        not (Value.equal (State.get st "data") Value.bot))
  in
  let d2 =
    Detector.make ~name:"populated" ~witness:populated ~detection:populated ()
  in
  check "detector conjunction lemma (framework level)" true
    (Compose.holds (Compose.conjunction_schema ts Memory.pm_detector d2));
  let tcfg = Termination.default in
  let tp = Termination.program tcfg in
  check "DFG probe detects quiescence" true
    (Detcor_semantics.Check.holds
       (Detector.satisfies tp (Termination.detector tcfg)
          ~from:(Termination.fresh tcfg)));
  check "DFG detector masks blackening faults" true
    (Detector.verdict
       (Detector.tolerant tp (Termination.detector tcfg)
          ~faults:(Termination.blackening tcfg) ~tol:Spec.Masking
          ~from:(Termination.fresh tcfg)));
  check "DFG detector survives whitening faults" false
    (Detector.verdict
       (Detector.tolerant tp (Termination.detector tcfg)
          ~faults:Termination.whitening ~tol:Spec.Failsafe
          ~from:(Termination.fresh tcfg)));
  let dcfg = Distributed_reset.default in
  check "distributed reset: nonmasking (detector + wave corrector)" true
    (Tolerance.verdict
       (Tolerance.is_nonmasking (Distributed_reset.program dcfg)
          ~spec:(Distributed_reset.spec dcfg)
          ~invariant:(Distributed_reset.invariant dcfg)
          ~faults:(Distributed_reset.corruption dcfg)));
  check "distributed reset with overlapping waves: livelock found" false
    (Tolerance.verdict
       (Tolerance.is_nonmasking (Distributed_reset.buggy dcfg)
          ~spec:(Distributed_reset.spec dcfg)
          ~invariant:(Distributed_reset.invariant dcfg)
          ~faults:(Distributed_reset.corruption dcfg)))

(* ------------------------------------------------------------------ *)
(* E7: synthesis.                                                      *)
(* ------------------------------------------------------------------ *)

let table_synthesis () =
  section "Table 6 (E7): automated addition of tolerance (ref. [4])";
  let open Detcor_synthesis in
  let ok = function
    | Ok (r : Synthesize.result) -> Tolerance.verdict r.report
    | Error _ -> false
  in
  check "memory + fail-safe" true
    (ok
       (Synthesize.add_failsafe Memory.intolerant ~spec:Memory.spec
          ~invariant:Memory.s ~faults:Memory.page_fault));
  check "memory + nonmasking" true
    (ok
       (Synthesize.add_nonmasking Memory.intolerant ~spec:Memory.spec
          ~invariant:Memory.s ~faults:Memory.page_fault));
  check "memory + masking" true
    (ok
       (Synthesize.add_masking Memory.intolerant ~spec:Memory.spec
          ~invariant:Memory.s ~faults:Memory.page_fault));
  check "TMR + fail-safe (rediscovers DR)" true
    (ok
       (Synthesize.add_failsafe Tmr.intolerant ~spec:Tmr.spec
          ~invariant:Tmr.invariant ~faults:Tmr.one_corruption));
  check "TMR + masking" true
    (ok
       (Synthesize.add_masking ~target:Tmr.out_is_uncor Tmr.intolerant
          ~spec:Tmr.spec ~invariant:Tmr.invariant ~faults:Tmr.one_corruption))

(* ------------------------------------------------------------------ *)
(* E8: simulation (the SIEFAST role).                                  *)
(* ------------------------------------------------------------------ *)

let table_simulation () =
  section "Table 7 (E8): fault-injection simulation, 500 runs per row";
  let open Detcor_sim in
  let mem_init =
    State.of_list
      [
        ("present", Value.bool true);
        ("data", Value.bot);
        ("z1", Value.bool false);
      ]
  in
  let sspec = Spec.safety (Spec.smallest_safety_containing Memory.spec) in
  let row name p ~detector ~corrector ~init =
    let runs =
      Runner.sample 500 p ~faults:Memory.page_fault
        ~policy:(Injector.Random { probability = 0.1; max_faults = 1 })
        ~init
    in
    let r = Monitor.report runs ~detector ~corrector ~sspec in
    Fmt.pr "%-14s violations %3d/500  detection %-36s correction %s@." name
      r.Monitor.safety_violations
      (Fmt.str "%a" Stats.pp_option r.Monitor.detection)
      (Fmt.str "%a" Stats.pp_option r.Monitor.correction)
  in
  row "p" Memory.intolerant ~detector:Memory.pf_detector
    ~corrector:Memory.pn_corrector
    ~init:(State.of_list [ ("present", Value.bool true); ("data", Value.bot) ]);
  row "pf" Memory.failsafe ~detector:Memory.pf_detector
    ~corrector:Memory.pn_corrector ~init:mem_init;
  row "pn" Memory.nonmasking ~detector:Memory.pf_detector
    ~corrector:Memory.pn_corrector
    ~init:(State.of_list [ ("present", Value.bool true); ("data", Value.bot) ]);
  row "pm" Memory.masking ~detector:Memory.pm_detector
    ~corrector:Memory.pm_corrector ~init:mem_init;
  Fmt.pr
    "@.(Expected shape, per Sections 3.3-5.1: p and pn may transiently \
     write incorrect data after a fault — pn then always corrects it — \
     while pf and pm never violate safety; pm also always corrects.)@."

(* ------------------------------------------------------------------ *)
(* E9: token-ring convergence.                                         *)
(* ------------------------------------------------------------------ *)

let table_ring () =
  section "Table 8 (E9): token-ring stabilization vs ring size";
  let open Detcor_sim in
  List.iter
    (fun n ->
      let cfg = Token_ring.make_config n in
      let p = Token_ring.program cfg in
      let verified =
        Detcor_semantics.Check.holds
          (Corrector.satisfies p (Token_ring.corrector cfg) ~from:Pred.true_)
      in
      let steps =
        List.filter_map
          (fun seed ->
            let rng = Random.State.make [| seed |] in
            let init =
              State.of_list
                (List.init n (fun i ->
                     ( Token_ring.xvar i,
                       Value.int
                         (Random.State.int rng cfg.Token_ring.counter_values) )))
            in
            let run =
              Runner.run
                ~config:{ Runner.default with seed; max_steps = 1000 }
                p
                ~injector:
                  (Injector.make Injector.None_ (Token_ring.corruption cfg))
                ~init
            in
            Detcor_semantics.Trace.first_index run.Runner.trace
              (Token_ring.legitimate cfg))
          (List.init 200 (fun i -> i + 1))
      in
      Fmt.pr "n=%d  verified corrector: %-5b  stabilization steps: %a@." n
        verified Stats.pp_option (Stats.summarize steps))
    [ 3; 4; 5; 6; 7 ]

(* ------------------------------------------------------------------ *)
(* E10b: packed engine vs the seed reference engine.                   *)
(*                                                                     *)
(* Each row runs the two halves of a tolerance check — state-space      *)
(* construction (the fault span of the invariant, then the fault-free   *)
(* system over the span states) and the verification battery (span      *)
(* closure, safety refinement over the span, convergence back to the    *)
(* invariant) — once per engine, on the same inputs.  [Ts.Reference]    *)
(* is the seed path: list-based product enumeration, whole-map          *)
(* interning, predicates re-evaluated at every query.                   *)
(* ------------------------------------------------------------------ *)

let table_engine () =
  section "Table 9 (E10b): packed engine vs reference engine";
  let module Sem = Detcor_semantics in
  let tbl = Bench_table.create "E10b packed engine vs reference engine" in
  let row name p ~spec ~invariant ~faults =
    let sspec =
      Spec.make ~name:"sspec"
        ~safety:(Spec.safety (Spec.smallest_safety_containing spec))
        ()
    in
    let composed = Fault.compose p faults in
    let measure engine =
      let ts_pf, t_span =
        Bench_table.time (fun () ->
            Sem.Ts.of_pred ~engine composed ~from:invariant)
      in
      let ts_p, t_build =
        Bench_table.time (fun () ->
            Sem.Ts.build ~engine p ~from:(Sem.Ts.states ts_pf))
      in
      let span_pred = Pred.of_states ~name:"span" (Sem.Ts.states ts_pf) in
      let verdicts, t_check =
        Bench_table.time (fun () ->
            List.map Sem.Check.holds
              [
                Sem.Check.closed ts_pf span_pred;
                Spec.refines ts_pf sspec;
                Sem.Check.converges ts_p span_pred invariant;
              ])
      in
      (Sem.Ts.num_states ts_pf, verdicts, t_span +. t_build, t_check)
    in
    let states_r, verdicts_r, build_r, check_r = measure Sem.Ts.Reference in
    let states_p, verdicts_p, build_p, check_p = measure Sem.Ts.Auto in
    let agree = states_r = states_p && verdicts_r = verdicts_p in
    check (name ^ ": engines agree") true agree;
    let open Detcor_obs in
    let speedup =
      Bench_table.add_row tbl ~name ~states:states_r ~agree
        ~reference_s:(build_r +. check_r) ~packed_s:(build_p +. check_p)
        ~extra:
          [
            ("reference_build_s", Jsonx.Float build_r);
            ("reference_check_s", Jsonx.Float check_r);
            ("packed_build_s", Jsonx.Float build_p);
            ("packed_check_s", Jsonx.Float check_p);
          ]
        ()
    in
    Fmt.pr
      "%-22s %6d states  reference %6.0f+%.0f ms  packed %5.0f+%.0f ms  \
       speedup %.1fx@."
      name states_r (1e3 *. build_r) (1e3 *. check_r) (1e3 *. build_p)
      (1e3 *. check_p) speedup
  in
  (* Instances one size up from the claim tables: the reference engine's
     cost is dominated by enumerating the variable product and by
     re-evaluating the span predicate at every query, so the gap widens
     with the product size (byzantine n=4 spans a 419904-state product,
     distributed reset n=7 a 559872-state product — the largest row). *)
  let bcfg = { Byzantine.non_generals = 4 } in
  row "byzantine-n4"
    (Byzantine.masking bcfg)
    ~spec:(Byzantine.spec bcfg)
    ~invariant:(Byzantine.invariant bcfg)
    ~faults:(Byzantine.byzantine_faults bcfg);
  let dcfg = Distributed_reset.make_config 7 in
  row "distributed-reset-n7"
    (Distributed_reset.program dcfg)
    ~spec:(Distributed_reset.spec dcfg)
    ~invariant:(Distributed_reset.invariant dcfg)
    ~faults:(Distributed_reset.corruption dcfg);
  let gcfg = Barrier.make_config 8 in
  row "barrier-n8"
    (Barrier.tolerant gcfg)
    ~spec:(Barrier.spec gcfg)
    ~invariant:(Barrier.invariant gcfg)
    ~faults:(Barrier.phase_loss gcfg);
  Fmt.pr "@.best construction+check speedup: %.1fx@." tbl.Bench_table.best_speedup;
  (* Machine-readable copy of the table, for CI artifacts and tracking
     engine performance across commits. *)
  Bench_table.write tbl ~file:"BENCH_engine.json"

(* ------------------------------------------------------------------ *)
(* E12: packed synthesis vs the reference synthesis path.              *)
(*                                                                     *)
(* Each row runs one end-to-end transformation of {!Synthesize} —      *)
(* ms/mt fixpoint, detection-guard restriction, invariant              *)
(* recomputation, recovery layering and the final verification — once  *)
(* on the reference path and once on the packed path, and demands      *)
(* byte-identical outcomes: the synthesized program rendered as text,  *)
(* the added detectors, the recovery-state count and the verification  *)
(* report (or the same failure).                                       *)
(* ------------------------------------------------------------------ *)

let table_synth () =
  section "Table 9d (E12): packed synthesis vs reference synthesis";
  let module Sem = Detcor_semantics in
  let open Detcor_synthesis in
  let tbl = Bench_table.create "E12 packed synthesis vs reference synthesis" in
  let outcome_str = function
    | Ok (r : Synthesize.result) ->
      Fmt.str "%a@.detectors=%a recovery=%d@.%a" Program.pp r.program
        Fmt.(Dump.list string)
        (List.map fst r.added_detectors)
        r.recovery_states Tolerance.pp_report r.report
    | Error f -> Fmt.str "error: %a" Synthesize.pp_failure f
  in
  let states = function
    | Ok (r : Synthesize.result) -> r.report.Tolerance.span_size
    | Error _ -> 0
  in
  let tag = function
    | Ok _ -> "ok"
    | Error Synthesize.Empty_invariant -> "empty-invariant"
    | Error (Synthesize.Unrecoverable_state _) -> "unrecoverable"
    | Error (Synthesize.Verification_failed _) -> "verification-failed"
    | Error (Synthesize.Exhausted _) -> "exhausted"
  in
  let row ?(expect_ok = true) name run =
    let r_ref, t_ref = Bench_table.time (fun () -> run Sem.Ts.Reference) in
    let r_pk, t_pk = Bench_table.time (fun () -> run Sem.Ts.Auto) in
    let agree = String.equal (outcome_str r_ref) (outcome_str r_pk) in
    check (name ^ ": outcomes byte-identical") true agree;
    let ok = match r_pk with Ok _ -> true | Error _ -> false in
    if expect_ok then check (name ^ ": synthesis succeeded") true ok;
    let inv_size, repairs =
      match r_pk with
      | Ok r -> (r.report.Tolerance.invariant_size, r.repair_iterations)
      | Error _ -> (0, 0)
    in
    let speedup =
      Bench_table.add_row tbl ~name ~states:(states r_pk) ~agree
        ~ok:(ok && agree) ~reference_s:t_ref ~packed_s:t_pk
        ~extra:
          [
            ("outcome", Detcor_obs.Jsonx.Str (tag r_pk));
            ("invariant_states", Detcor_obs.Jsonx.Int inv_size);
            ("repair_iterations", Detcor_obs.Jsonx.Int repairs);
          ]
        ()
    in
    Fmt.pr
      "%-24s %6d states  reference %8.0f ms  packed %6.0f ms  speedup \
       %5.1fx  [%s, |S|=%d, repairs=%d]@."
      name (states r_pk) (1e3 *. t_ref) (1e3 *. t_pk) speedup (tag r_pk)
      inv_size repairs
  in
  row "memory-masking" (fun engine ->
      Synthesize.add_masking ~engine Memory.intolerant ~spec:Memory.spec
        ~invariant:Memory.s ~faults:Memory.page_fault);
  row "tmr-masking" (fun engine ->
      Synthesize.add_masking ~engine ~target:Tmr.out_is_uncor Tmr.intolerant
        ~spec:Tmr.spec ~invariant:Tmr.invariant ~faults:Tmr.one_corruption);
  (* The ring with one process's move stripped: recovery layering has real
     work to do re-establishing convergence. *)
  let rcfg = Token_ring.make_config 5 in
  let crippled =
    Program.make ~name:"crippled-ring5"
      ~vars:(Program.var_decls (Token_ring.program rcfg))
      ~actions:
        (List.filter
           (fun ac -> Action.name ac <> "move_1")
           (Program.actions (Token_ring.program rcfg)))
  in
  row "ring5-nonmasking" (fun engine ->
      Synthesize.add_nonmasking ~engine crippled ~spec:(Token_ring.spec rcfg)
        ~invariant:(Token_ring.legitimate rcfg)
        ~faults:(Token_ring.corruption rcfg));
  (* Masking needs the ideal-stabilization reading of the ring spec:
     against [closure_of legitimate] with arbitrary corruption, ms is the
     whole product and no invariant survives (the classic impossibility);
     the liveness-only [spec_ideal] is what masking synthesis can and
     should achieve. *)
  row "ring5-masking" (fun engine ->
      Synthesize.add_masking ~engine crippled
        ~spec:(Token_ring.spec_ideal rcfg)
        ~invariant:(Token_ring.legitimate rcfg)
        ~faults:(Token_ring.corruption rcfg));
  let bcfg = { Byzantine.non_generals = 4 } in
  row "byzantine-n4-masking" (fun engine ->
      Synthesize.add_masking ~engine (Byzantine.intolerant bcfg)
        ~spec:(Byzantine.spec bcfg)
        ~invariant:(Byzantine.invariant_weak bcfg)
        ~faults:(Byzantine.byzantine_faults bcfg));
  let dcfg = Distributed_reset.make_config 7 in
  (* The masking reading of the reset spec: wave integrity always, settled
     eventually.  [closure_of settled] is unusable here — one corruption
     escapes it from inside the invariant, so ms swallows the invariant. *)
  row "reset7-masking" (fun engine ->
      Synthesize.add_masking ~engine (Distributed_reset.program dcfg)
        ~spec:(Distributed_reset.masking_spec dcfg)
        ~invariant:(Distributed_reset.invariant dcfg)
        ~faults:(Distributed_reset.corruption dcfg));
  Fmt.pr "@.best end-to-end synthesis speedup: %.1fx@."
    tbl.Bench_table.best_speedup;
  Bench_table.write tbl ~file:"BENCH_synth.json"

(* ------------------------------------------------------------------ *)
(* E11: observability overhead.                                        *)
(*                                                                     *)
(* The instrumentation must be free when disabled: every site guards    *)
(* itself with one ref read.  This table times the same verification    *)
(* workload with observability off (the default) and with a recording   *)
(* context installed, and checks the reports are character-identical.   *)
(* ------------------------------------------------------------------ *)

let table_obs () =
  section "Table 9b (E11): observability overhead (off vs recording)";
  let open Detcor_obs in
  let workload () =
    Tolerance.check Tmr.masking ~spec:Tmr.spec ~invariant:Tmr.invariant
      ~faults:Tmr.one_corruption ~tol:Spec.Masking
  in
  let report_str r = Fmt.str "%a" Tolerance.pp_report r in
  let off_report = report_str (workload ()) in
  let sink, _records = Sink.memory () in
  let on_report =
    Obs.with_ctx (Obs.make ~sinks:[ sink ] ()) (fun () -> workload ())
  in
  check "verdicts identical with observability on" true
    (String.equal off_report (report_str on_report));
  let time_iters = Bench_table.time_iters ~iters:40 in
  ignore (time_iters workload) (* warm up *);
  let t_off = time_iters workload in
  let t_on =
    let sink, _ = Sink.memory () in
    Obs.with_ctx (Obs.make ~sinks:[ sink ] ()) (fun () ->
        time_iters workload)
  in
  Fmt.pr
    "disabled: %.2f ms/run   recording (memory sink): %.2f ms/run   \
     overhead when on: %.0f%%@."
    (1e3 *. t_off) (1e3 *. t_on)
    (100.0 *. ((t_on /. t_off) -. 1.0))

(* ------------------------------------------------------------------ *)
(* E13: checkpoint snapshot overhead.                                  *)
(*                                                                     *)
(* Arming --checkpoint must be close to free at the default interval:   *)
(* the per-tick cost is one flag read, and the interval keeps actual    *)
(* saves off the hot path.  This table times the same verification      *)
(* workload disarmed and armed, checks the reports are character-       *)
(* identical, and claims the overhead stays under 5%.  Timings are the  *)
(* best of five batches so scheduler noise cannot fake a regression.    *)
(* ------------------------------------------------------------------ *)

let table_robust () =
  section "Table 9e (E13): checkpoint snapshot overhead";
  let open Detcor_robust in
  let workload () =
    Tolerance.check Tmr.masking ~spec:Tmr.spec ~invariant:Tmr.invariant
      ~faults:Tmr.one_corruption ~tol:Spec.Masking
  in
  let report_str r = Fmt.str "%a" Tolerance.pp_report r in
  let snap = Filename.temp_file "detcor_bench" ".snap" in
  let fingerprint = Checkpoint.digest [ "bench"; "E13" ] in
  let armed interval f =
    Checkpoint.start ~interval ~write:snap ~fingerprint ();
    Fun.protect ~finally:Checkpoint.stop f
  in
  let off_report = workload () in
  let on_report = armed Checkpoint.default_interval workload in
  check "verdicts identical with checkpointing armed" true
    (String.equal (report_str off_report) (report_str on_report));
  let iters = 30 in
  ignore (Bench_table.time_iters ~iters workload) (* warm up *);
  (* Interleave the disarmed and armed batches: the workload's timing
     is bimodal on shared machines (GC/scheduler regimes an order of
     magnitude apart), so timing each arm in its own block lets one
     regime land entirely on one side and fake a huge overhead either
     way.  Best-of over alternating batches gives both arms a shot at
     the fast regime. *)
  let t_off = ref infinity and t_on = ref infinity in
  for round = 1 to 12 do
    (* Alternate which arm goes first: allocation drift inside a round
       (GC slices triggered by the workload itself) otherwise lands
       systematically on the second arm. *)
    let batch_off () =
      t_off := Float.min !t_off (Bench_table.time_iters ~iters workload)
    and batch_on () =
      t_on :=
        Float.min !t_on
          (armed Checkpoint.default_interval (fun () ->
               Bench_table.time_iters ~iters workload))
    in
    if round land 1 = 0 then begin
      batch_off ();
      batch_on ()
    end
    else begin
      batch_on ();
      batch_off ()
    end
  done;
  let t_off = !t_off and t_on = !t_on in
  let best_of n f =
    let best = ref infinity in
    for _ = 1 to n do
      let t = f () in
      if t < !best then best := t
    done;
    !best
  in
  (* An aggressive interval pays for real saves; informational only. *)
  let t_hot =
    best_of 3 (fun () ->
        armed 0.001 (fun () -> Bench_table.time_iters ~iters workload))
  in
  let final_bytes =
    try (Unix.stat snap).Unix.st_size with Unix.Unix_error _ -> 0
  in
  (try Sys.remove snap with Sys_error _ -> ());
  let overhead_pct = 100.0 *. ((t_on /. t_off) -. 1.0) in
  Fmt.pr
    "disarmed: %.2f ms/run   armed (%.0fs interval): %.2f ms/run   \
     overhead: %.1f%%@."
    (1e3 *. t_off) Checkpoint.default_interval (1e3 *. t_on) overhead_pct;
  Fmt.pr "armed (1ms interval, saving continuously): %.2f ms/run   final \
          snapshot: %d bytes@."
    (1e3 *. t_hot) final_bytes;
  check "snapshot overhead under 5% at the default interval" true
    (overhead_pct < 5.0);
  let tbl = Bench_table.create "E13 checkpoint snapshot overhead" in
  ignore
    (Bench_table.add_row tbl ~name:"tmr masking check"
       ~states:off_report.Tolerance.span_size ~agree:true ~reference_s:t_off
       ~packed_s:t_on
       ~extra:
         [
           ("overhead_pct", Detcor_obs.Jsonx.Float overhead_pct);
           ("hot_interval_s", Detcor_obs.Jsonx.Float t_hot);
           ("snapshot_bytes", Detcor_obs.Jsonx.Int final_bytes);
         ]
       ());
  Bench_table.write tbl ~file:"BENCH_robust.json"

(* ------------------------------------------------------------------ *)
(* E14: syndrome-batched monitoring vs predicate-at-a-time.            *)
(*                                                                     *)
(* Each row monitors the same pre-sampled runs twice: once through the *)
(* reference monitors (one predicate closure at a time, one trace walk  *)
(* per quantity) and once through the compiled syndrome path (whole     *)
(* witness family per batch, rank-memoized).  The rendered reports must *)
(* be byte-identical; the long recurrent token-ring stream is where     *)
(* batching must pay — every revisited state costs bit reads instead    *)
(* of closure evaluation.                                               *)
(* ------------------------------------------------------------------ *)

let table_monitor () =
  section "Table 9f (E14): syndrome-batched monitoring vs predicate-at-a-time";
  let open Detcor_sim in
  let module Sem = Detcor_semantics in
  let tbl = Bench_table.create "E14 syndrome monitor vs predicate-at-a-time" in
  let row ?(want_10x = false) name program runs ~detector ~corrector ~sspec =
    let states =
      List.fold_left
        (fun a (r : Runner.run) -> a + 1 + Sem.Trace.length r.trace)
        0 runs
    in
    (* Interleaved best-of across the three modes: shared machines
       drift between timing regimes, so timing each mode in its own
       block would let a slow regime land entirely on one mode and
       fake a dispatch regression (or hide one).  Auto must dispatch
       to whichever evaluator wins — its work crossover keeps tiny
       protocols on reference, where the memo toll used to cost 0.6x,
       and packs the long recurrent streams. *)
    let sample out best f =
      let r, t = Bench_table.time f in
      if t < !best then begin
        best := t;
        out := Some r
      end;
      t
    in
    let ref_out = ref None and ref_best = ref infinity in
    let packed_out = ref None and packed_best = ref infinity in
    let auto_out = ref None and auto_best = ref infinity in
    (* Best paired reference/auto ratio across rounds: the two arms run
       adjacently, so one quiet round bounds the true dispatch cost even
       when the global minima land in different load regimes. *)
    let best_pair = ref 0.0 in
    for _ = 1 to 5 do
      let tr =
        sample ref_out ref_best (fun () ->
            Monitor.report ~mode:Syndrome.Reference runs ~detector ~corrector
              ~sspec)
      in
      ignore
        (sample packed_out packed_best (fun () ->
             Monitor.report ~mode:Syndrome.Packed ~program runs ~detector
               ~corrector ~sspec));
      let ta =
        sample auto_out auto_best (fun () ->
            Monitor.report ~mode:Syndrome.Auto ~program runs ~detector
              ~corrector ~sspec)
      in
      best_pair := Float.max !best_pair (tr /. ta)
    done;
    let ref_report = Option.get !ref_out and reference_s = !ref_best in
    let packed_report = Option.get !packed_out and packed_s = !packed_best in
    let auto_report = Option.get !auto_out and auto_s = !auto_best in
    let ref_str = Fmt.str "%a" Monitor.pp_report ref_report in
    let agree = ref_str = Fmt.str "%a" Monitor.pp_report packed_report in
    check (name ^ " monitor verdicts identical") true agree;
    check
      (name ^ " auto verdict identical")
      true
      (ref_str = Fmt.str "%a" Monitor.pp_report auto_report);
    let auto_speedup = reference_s /. auto_s in
    let speedup =
      Bench_table.add_row tbl ~name ~states ~agree ~reference_s ~packed_s
        ~extra:
          [
            ( "packed_states_per_s",
              Detcor_obs.Jsonx.Float (float_of_int states /. packed_s) );
            ("auto_s", Detcor_obs.Jsonx.Float auto_s);
            ("auto_speedup", Detcor_obs.Jsonx.Float auto_speedup);
          ]
        ()
    in
    Fmt.pr
      "%-14s states %8d  reference %8.4fs  packed %8.4fs  %6.2fx  auto \
       %6.2fx@."
      name states reference_s packed_s speedup auto_speedup;
    check
      (name ^ " auto dispatch never regresses")
      true
      (Float.max auto_speedup !best_pair >= 0.95);
    if want_10x then
      check (name ^ " batched speedup >= 10x") true (speedup >= 10.0)
  in
  let mem_init =
    State.of_list
      [
        ("present", Value.bool true);
        ("data", Value.bot);
        ("z1", Value.bool false);
      ]
  in
  let sspec = Spec.safety (Spec.smallest_safety_containing Memory.spec) in
  let mem_runs p init =
    Runner.sample 500 p ~faults:Memory.page_fault
      ~policy:(Injector.Random { probability = 0.1; max_faults = 1 })
      ~init
  in
  row "memory-pm" Memory.masking
    (mem_runs Memory.masking mem_init)
    ~detector:Memory.pm_detector ~corrector:Memory.pm_corrector ~sspec;
  row "memory-pn" Memory.nonmasking
    (mem_runs Memory.nonmasking
       (State.of_list [ ("present", Value.bool true); ("data", Value.bot) ]))
    ~detector:Memory.pf_detector ~corrector:Memory.pn_corrector ~sspec;
  (* The long stream: a 5-process ring wanders its 200k-state sample far
     longer than its distinct-state count, so the syndrome memo's hit
     rate approaches 1. *)
  let cfg = Token_ring.make_config 5 in
  let ring = Token_ring.program cfg in
  let ring_runs =
    Runner.sample
      ~config:{ Runner.default with max_steps = 2000 }
      100 ring
      ~faults:(Token_ring.corruption cfg)
      ~policy:(Injector.Random { probability = 0.02; max_faults = 4 })
      ~init:
        (State.of_list (List.init 5 (fun i -> (Token_ring.xvar i, Value.int 0))))
  in
  let ring_corrector = Token_ring.corrector cfg in
  row ~want_10x:true "ring5-long" ring ring_runs
    ~detector:(Corrector.as_detector ring_corrector)
    ~corrector:ring_corrector
    ~sspec:(Spec.safety (Spec.smallest_safety_containing (Token_ring.spec cfg)));
  (* Verdict identity on every shipped system: whatever the language
     front end elaborates must monitor identically on both paths. *)
  let corpus = "examples/dc" in
  if Sys.file_exists corpus && Sys.is_directory corpus then
    Sys.readdir corpus |> Array.to_list |> List.sort String.compare
    |> List.iter (fun f ->
           if Filename.check_suffix f ".dc" then begin
             let e = Detcor_lang.Elaborate.load_file (Filename.concat corpus f) in
             match
               List.filter (Pred.holds e.invariant) (Program.states e.program)
             with
             | [] -> ()
             | init :: _ ->
               let runs =
                 Runner.sample 50 e.program ~faults:e.faults
                   ~policy:
                     (Injector.Random { probability = 0.2; max_faults = 2 })
                   ~init
               in
               let sspec =
                 Spec.safety (Spec.smallest_safety_containing e.spec)
               in
               let corrector = Corrector.of_invariant e.invariant in
               let detector = Corrector.as_detector corrector in
               let report mode =
                 Fmt.str "%a" Monitor.pp_report
                   (Monitor.report ~mode ~program:e.program runs ~detector
                      ~corrector ~sspec)
               in
               check
                 (Fmt.str "%s verdicts identical" f)
                 true
                 (report Syndrome.Reference = report Syndrome.Packed)
           end);
  Bench_table.write tbl ~file:"BENCH_monitor.json"

(* ------------------------------------------------------------------ *)
(* E15: live-telemetry overhead.                                       *)
(*                                                                     *)
(* Arming --telemetry costs one HTTP listener blocked in accept plus    *)
(* progress heartbeats on the Budget checkpoint slow path (10 Hz,       *)
(* owner-gated).  This table verifies verdicts are byte-identical with  *)
(* telemetry armed on every shipped system, then times the ring5 and    *)
(* byzantine verification workloads disarmed and armed and claims the   *)
(* overhead stays under 2%.  Timings are interleaved best-of minima     *)
(* with alternating arm order, mirroring the checkpoint table, so       *)
(* scheduler noise and drift cannot fake a regression.                  *)
(* ------------------------------------------------------------------ *)

let table_telemetry () =
  section "Table 9g (E15): live-telemetry overhead (off vs armed)";
  let open Detcor_obs in
  let armed f =
    match Telemetry.start "127.0.0.1:0" with
    | Error e -> failwith ("E15 listener failed to start: " ^ e)
    | Ok t ->
      Expose.register_process_gauges ();
      Progress.start ();
      Fun.protect
        ~finally:(fun () ->
          Progress.stop ();
          Telemetry.stop t)
        f
  in
  (* Verdict identity on every shipped system: heartbeats and the scrape
     thread must never perturb a result. *)
  let corpus = "examples/dc" in
  if Sys.file_exists corpus && Sys.is_directory corpus then
    Sys.readdir corpus |> Array.to_list |> List.sort String.compare
    |> List.iter (fun f ->
           if Filename.check_suffix f ".dc" then begin
             let e = Detcor_lang.Elaborate.load_file (Filename.concat corpus f) in
             let report () =
               Fmt.str "%a" Tolerance.pp_report
                 (Tolerance.check e.program ~spec:e.spec ~invariant:e.invariant
                    ~faults:e.faults ~tol:Spec.Masking)
             in
             let off = report () in
             let on = armed report in
             check (Fmt.str "%s verdicts identical with telemetry" f) true
               (String.equal off on)
           end);
  let ring5 () =
    let cfg = Token_ring.make_config 5 in
    Corrector.satisfies (Token_ring.program cfg) (Token_ring.corrector cfg)
      ~from:Pred.true_
  in
  let byz4 () =
    let cfg = Byzantine.default in
    ignore
      (Tolerance.check (Byzantine.masking cfg) ~spec:(Byzantine.spec cfg)
         ~invariant:(Byzantine.invariant cfg)
         ~faults:(Byzantine.byzantine_faults cfg) ~tol:Spec.Masking)
  in
  let tbl = Bench_table.create "E15 live-telemetry overhead" in
  let overhead_row name ~iters workload =
    (* Armed warm-up: the first [Thread.create] flips the whole process
       into the systhread tick regime, so both arms must be timed on the
       same side of that transition. *)
    ignore (armed (fun () -> Bench_table.time_iters ~iters workload));
    (* Interleaved best-of with alternating arm order, as in the
       checkpoint table: the workloads' timing regimes are bimodal on
       shared machines and allocation drift inside a round would land
       systematically on whichever arm runs second. *)
    let t_off = ref infinity and t_on = ref infinity in
    (* Best paired on/off ratio across rounds: the two arms run
       adjacently, so one quiet round bounds the true overhead even when
       the global minima land in different load regimes. *)
    let best_pair = ref infinity in
    for round = 1 to 12 do
      let batch_off () =
        let t = Bench_table.time_iters ~iters workload in
        t_off := Float.min !t_off t;
        t
      and batch_on () =
        let t = armed (fun () -> Bench_table.time_iters ~iters workload) in
        t_on := Float.min !t_on t;
        t
      in
      let off_t, on_t =
        if round land 1 = 0 then begin
          let f = batch_off () in
          (f, batch_on ())
        end
        else begin
          let n = batch_on () in
          (batch_off (), n)
        end
      in
      best_pair := Float.min !best_pair (on_t /. off_t)
    done;
    let t_off = !t_off and t_on = !t_on in
    let overhead_pct = 100.0 *. ((t_on /. t_off) -. 1.0) in
    let claim_pct = 100.0 *. (Float.min (t_on /. t_off) !best_pair -. 1.0) in
    Fmt.pr
      "%-10s disarmed: %.2f ms/run   armed (listener + heartbeats): %.2f \
       ms/run   overhead: %.1f%%@."
      name (1e3 *. t_off) (1e3 *. t_on) overhead_pct;
    check
      (Fmt.str "%s telemetry overhead under 2%%" name)
      true (claim_pct < 2.0);
    ignore
      (Bench_table.add_row tbl ~name ~states:0 ~agree:true ~reference_s:t_off
         ~packed_s:t_on
         ~extra:
           [
             ("overhead_pct", Detcor_obs.Jsonx.Float overhead_pct);
             ("paired_overhead_pct", Detcor_obs.Jsonx.Float claim_pct);
           ]
         ())
  in
  overhead_row "ring5" ~iters:5 (fun () -> ignore (ring5 ()));
  overhead_row "byz4" ~iters:20 byz4;
  Bench_table.write tbl ~file:"BENCH_obs.json"

(* ------------------------------------------------------------------ *)
(* E16 / Table 9h: the out-of-core sharded engine at scale.            *)
(* ------------------------------------------------------------------ *)

(* Two kinds of rows.  Identity rows check verdict agreement between the
   packed and sharded engines on substrates too big for the per-property
   differential suite (Byzantine n=7, distributed reset n=10).  The
   scale row (ring12: 4^12 states, [--scale] only — it is a long
   single-core run) is the engine's reason to exist: the sharded
   exploration finishes a 16.7M-state fail-safe check under a bounded
   resident footprint, then the packed engine is given the same memory
   budget and trips it.  The sharded run goes FIRST: peak RSS (VmHWM) is
   monotone over the process lifetime, so its bound must be measured
   before the packed attempt inflates the high-water mark. *)
let table_scale ~scale () =
  section "Table 9h (E16): out-of-core sharded engine";
  let module Ts = Detcor_semantics.Ts in
  let tbl = Bench_table.create "E16 sharded engine vs packed engine" in
  let spill_dir =
    let d =
      Filename.concat (Filename.get_temp_dir_name ()) "detcor-bench-spill"
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d
  in
  let spill_files () =
    Array.length
      (Array.of_list
         (List.filter
            (fun f -> Filename.check_suffix f ".seg")
            (Array.to_list (Sys.readdir spill_dir))))
  in
  let with_shards ?(shards = 4) ?(arena_mb = 512) f =
    let saved_k, saved_dir, saved_mb = Ts.shard_defaults () in
    Ts.set_shard_defaults ~shards ~spill_dir:(Some spill_dir)
      ~arena_budget_mb:arena_mb;
    Fun.protect
      ~finally:(fun () ->
        Ts.set_shard_defaults ~shards:saved_k ~spill_dir:saved_dir
          ~arena_budget_mb:saved_mb)
      f
  in
  let identity name ?limit ~tol p ~spec ~invariant ~faults () =
    let run engine =
      Tolerance.check ?limit ~engine p ~spec ~invariant ~faults ~tol
    in
    let r_pk, t_pk = Bench_table.time (fun () -> run Ts.Auto) in
    let r_sh, t_sh =
      Bench_table.time (fun () -> with_shards (fun () -> run Ts.Sharded))
    in
    let agree =
      Tolerance.verdict r_pk = Tolerance.verdict r_sh
      && r_pk.Tolerance.span_size = r_sh.Tolerance.span_size
    in
    check (name ^ ": sharded verdict and span agree with packed") true agree;
    Fmt.pr "  %-28s span %8d states  packed %6.2fs  sharded %6.2fs@." name
      r_sh.Tolerance.span_size t_pk t_sh;
    ignore
      (Bench_table.add_row tbl ~name ~states:r_sh.Tolerance.span_size ~agree
         ~reference_s:t_pk ~packed_s:t_sh
         ~extra:
           [
             ("reference_engine", Detcor_obs.Jsonx.Str "packed");
             ("packed_engine", Detcor_obs.Jsonx.Str "sharded");
           ]
         ())
  in
  let byz = Byzantine.{ non_generals = 6 } in
  identity "byzantine n=7 failsafe" ~tol:Spec.Failsafe (Byzantine.masking byz)
    ~spec:(Byzantine.spec byz) ~invariant:(Byzantine.invariant byz)
    ~faults:(Byzantine.byzantine_faults byz) ();
  let reset = Distributed_reset.make_config 10 in
  identity "distributed reset n=10" ~tol:Spec.Masking
    (Distributed_reset.program reset)
    ~spec:(Distributed_reset.masking_spec reset)
    ~invariant:(Distributed_reset.settled reset)
    ~faults:(Distributed_reset.corruption reset) ();
  if not scale then
    Fmt.pr "@.(ring12 out-of-core row skipped — rerun with --scale)@."
  else begin
    let cfg = Token_ring.make_config ~k:4 12 in
    let p = Token_ring.program cfg in
    let somepriv =
      Pred.make "someprivilege" (fun st -> Token_ring.privilege_count cfg st >= 1)
    in
    let spec =
      Spec.make ~name:"SPEC_ring12" ~safety:(Safety.always somepriv) ()
    in
    let invariant = Token_ring.legitimate cfg in
    let faults = Fault.corrupt_variable (Token_ring.xvar 0) (Domain.range 0 3) in
    let limit = 17_000_000 in
    let run engine =
      Tolerance.check ~limit ~engine p ~spec ~invariant ~faults
        ~tol:Spec.Failsafe
    in
    let r_sh, t_sh =
      Bench_table.time (fun () ->
          with_shards ~shards:4 ~arena_mb:512 (fun () -> run Ts.Sharded))
    in
    let rss_sh = Detcor_obs.Expose.peak_rss_bytes () in
    let spills = spill_files () in
    Fmt.pr "ring12 sharded: span %d states in %.1fs, peak RSS %d MB, %d spill files@."
      r_sh.Tolerance.span_size t_sh
      (rss_sh / (1024 * 1024))
      spills;
    check "ring12 sharded verdict holds" true (Tolerance.verdict r_sh);
    check "ring12 sharded explored >= 10^7 states" true
      (r_sh.Tolerance.span_size >= 10_000_000);
    (* The packed attempt runs under a memory budget no tighter than what
       the sharded run actually consumed — exclusion is honest. *)
    let budget_mb = max 2048 (rss_sh / (1024 * 1024)) in
    let budget = Detcor_robust.Budget.make ~max_memory_mb:budget_mb () in
    let r_pk, t_pk =
      Bench_table.time (fun () ->
          Detcor_robust.Budget.with_budget budget (fun () -> run Ts.Auto))
    in
    let packed_excluded = Tolerance.unknowns r_pk <> [] in
    Fmt.pr "ring12 packed under %d MB budget: %s in %.1fs@." budget_mb
      (if packed_excluded then "EXCLUDED (memory budget exhausted)"
       else "completed")
      t_pk;
    check "ring12 packed trips the sharded run's memory budget" true
      packed_excluded;
    ignore
      (Bench_table.add_row tbl ~name:"token ring n=12 failsafe (out-of-core)"
         ~states:r_sh.Tolerance.span_size
         ~agree:(Tolerance.verdict r_sh) ~reference_s:t_pk ~packed_s:t_sh
         ~ok:(Tolerance.verdict r_sh && packed_excluded)
         ~extra:
           [
             ("reference_engine", Detcor_obs.Jsonx.Str "packed");
             ("packed_engine", Detcor_obs.Jsonx.Str "sharded");
             ("sharded_peak_rss_bytes", Detcor_obs.Jsonx.Int rss_sh);
             ("packed_budget_mb", Detcor_obs.Jsonx.Int budget_mb);
             ("packed_excluded", Detcor_obs.Jsonx.Bool packed_excluded);
             ("spill_files", Detcor_obs.Jsonx.Int spills);
           ]
         ())
  end;
  Bench_table.write tbl ~file:"BENCH_scale.json"

(* ------------------------------------------------------------------ *)
(* E10: Bechamel timings.                                              *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

let timing_tests () =
  let mem_verify tol () =
    ignore
      (Tolerance.check Memory.masking ~spec:Memory.spec ~invariant:Memory.s
         ~faults:Memory.page_fault ~tol)
  in
  let tmr_masking () =
    ignore
      (Tolerance.check Tmr.masking ~spec:Tmr.spec ~invariant:Tmr.invariant
         ~faults:Tmr.one_corruption ~tol:Spec.Masking)
  in
  let byz_masking () =
    let cfg = Byzantine.default in
    ignore
      (Tolerance.check (Byzantine.masking cfg) ~spec:(Byzantine.spec cfg)
         ~invariant:(Byzantine.invariant cfg)
         ~faults:(Byzantine.byzantine_faults cfg) ~tol:Spec.Masking)
  in
  let ring_corrector n () =
    let cfg = Token_ring.make_config n in
    ignore
      (Corrector.satisfies (Token_ring.program cfg) (Token_ring.corrector cfg)
         ~from:Pred.true_)
  in
  let synth_memory () =
    ignore
      (Detcor_synthesis.Synthesize.add_masking Memory.intolerant
         ~spec:Memory.spec ~invariant:Memory.s ~faults:Memory.page_fault)
  in
  let synth_tmr () =
    ignore
      (Detcor_synthesis.Synthesize.add_masking ~target:Tmr.out_is_uncor
         Tmr.intolerant ~spec:Tmr.spec ~invariant:Tmr.invariant
         ~faults:Tmr.one_corruption)
  in
  let simulate () =
    let open Detcor_sim in
    ignore
      (Runner.sample 10 Memory.masking ~faults:Memory.page_fault
         ~policy:(Injector.Random { probability = 0.1; max_faults = 1 })
         ~init:
           (State.of_list
              [
                ("present", Value.bool true);
                ("data", Value.bot);
                ("z1", Value.bool false);
              ]))
  in
  let theorem_5_5 () =
    ignore
      (Theorems.theorem_5_5 ~base:Memory.nonmasking ~refined:Memory.masking
         ~spec:Memory.spec ~faults:Memory.page_fault ~invariant_s:Memory.s
         ~invariant_r:Memory.s ())
  in
  Test.make_grouped ~name:"detcor"
    [
      Test.make ~name:"verify/memory-masking" (Staged.stage (mem_verify Spec.Masking));
      Test.make ~name:"verify/memory-failsafe" (Staged.stage (mem_verify Spec.Failsafe));
      Test.make ~name:"verify/tmr-masking" (Staged.stage tmr_masking);
      Test.make ~name:"verify/byzantine-masking" (Staged.stage byz_masking);
      Test.make ~name:"verify/ring-n3" (Staged.stage (ring_corrector 3));
      Test.make ~name:"verify/ring-n4" (Staged.stage (ring_corrector 4));
      Test.make ~name:"verify/ring-n5" (Staged.stage (ring_corrector 5));
      Test.make ~name:"synthesize/memory-masking" (Staged.stage synth_memory);
      Test.make ~name:"synthesize/tmr-masking" (Staged.stage synth_tmr);
      Test.make ~name:"simulate/memory-10runs" (Staged.stage simulate);
      Test.make ~name:"theorem/5.5-memory" (Staged.stage theorem_5_5);
    ]

let run_timings () =
  section "Table 10 (E10): toolkit cost (Bechamel, monotonic clock)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances (timing_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name est acc -> (name, est) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  List.iter
    (fun (name, est) ->
      match Analyze.OLS.estimates est with
      | Some [ ns ] -> Fmt.pr "%-40s %12.1f us/run@." name (ns /. 1_000.)
      | Some _ | None -> Fmt.pr "%-40s (no estimate)@." name)
    rows

let () =
  (* [--no-timings] skips the Bechamel wall-clock section: the claim
     tables and the engine differential still run, so CI can smoke-test
     for [MISMATCH] lines without paying for the statistics. *)
  let timings = not (Array.mem "--no-timings" Sys.argv) in
  let scale = Array.mem "--scale" Sys.argv in
  Fmt.pr
    "detcor reproduction harness — Arora & Kulkarni, 'Detectors and \
     Correctors' (ICDCS 1998)@.";
  table_memory ();
  table_theorems ();
  table_tmr ();
  table_byzantine ();
  table_negative ();
  table_substrates ();
  table_synthesis ();
  table_simulation ();
  table_ring ();
  table_engine ();
  table_synth ();
  table_obs ();
  table_robust ();
  table_monitor ();
  table_telemetry ();
  table_scale ~scale ();
  if timings then run_timings ();
  Fmt.pr "@.=== Summary ===@.";
  if !mismatches = 0 then Fmt.pr "All claims match the paper.@."
  else begin
    Fmt.pr "%d claim(s) MISMATCHED the paper.@." !mismatches;
    exit 1
  end
