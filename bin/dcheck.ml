(* dcheck — command-line front end to the detectors-and-correctors
   toolkit.

     dcheck info FILE.dc         program summary and state-space size
     dcheck verify FILE.dc       tolerance checks against the declared spec
     dcheck components FILE.dc   extract detector/corrector components
     dcheck synthesize FILE.dc   add fail-safe/nonmasking/masking tolerance
     dcheck simulate FILE.dc     fault-injection simulation with monitors
     dcheck monitor FILE.dc      syndrome monitoring of recorded run streams
     dcheck profile FILE.dc      per-phase time/space breakdown of verify

   Every subcommand accepts --trace FILE (span/event trace, JSON-lines or
   Chrome trace_event by extension), --metrics FILE (JSON snapshot of all
   counters and histograms), --log-level LEVEL (echo events to stderr) and
   --timeout SECONDS (wall-clock budget; exhaustion exits 3).

   The long-running subcommands (verify, synthesize, simulate) also take
   --checkpoint FILE / --checkpoint-interval SECONDS (periodic crash-safe
   snapshots of the running fixpoints; a final snapshot is written on the
   way out of an exhausted budget, so exit 3 always leaves a resumable
   file), --resume FILE (continue from a snapshot to the identical
   verdict) and --workers N (parallel exploration; a crashed worker
   domain is retried sequentially and the run degrades to fewer workers).

   Exit codes: 0 verdict holds, 1 verification (or synthesis) fails,
   2 usage/parse/type error, 3 resource budget exhausted (including a
   truncated, corrupted or mismatched --resume snapshot).

   Programs are written in the guarded-command language of Detcor_lang;
   see examples/dc/. *)

open Cmdliner
open Detcor_kernel
open Detcor_spec
open Detcor_core
open Detcor_lang
open Detcor_obs
module Error = Detcor_robust.Error
module Budget = Detcor_robust.Budget
module Checkpoint = Detcor_robust.Checkpoint
module Failpoint = Detcor_robust.Failpoint

(* ------------------------------------------------------------------ *)
(* Exit bookkeeping and finalizers.                                    *)
(* ------------------------------------------------------------------ *)

(* [Stdlib.exit] runs [at_exit] callbacks but NOT [Fun.protect]
   finalizers further up the stack — so any flushing duty that must
   survive [or_die], an inline [exit] or SIGINT (closing trace sinks,
   the metrics snapshot, the run ledger) registers here and is driven
   from one [at_exit].  Finalizers run once: the list is emptied before
   iterating, so a finalizer calling [exit] cannot recurse. *)
let finalizers : (unit -> unit) list ref = ref []

let add_finalizer f = finalizers := f :: !finalizers

let run_finalizers () =
  let fs = !finalizers in
  finalizers := [];
  List.iter (fun f -> try f () with _ -> ()) fs

(* The code the process is about to exit with, for the ledger record.
   Every exit path funnels through [exiting] or sets it explicitly. *)
let exit_code_seen = ref 0

let exiting code =
  exit_code_seen := code;
  exit code

(* The budget dimension that tripped, when this run exits 3. *)
let budget_trip_seen : string option ref = ref None

(* SIGTERM asks for an orderly stop: when a checkpoint session is armed
   the handler only raises this flag, and the exit happens at the next
   cooperative budget tick — flushing from inside the asynchronous
   handler could capture a mid-mutation fixpoint and leave a snapshot
   worse than the last periodic one.  With no checkpoint armed there is
   no loop state to keep consistent, so the handler exits directly; a
   repeated SIGTERM also exits directly (the escape hatch for a loop
   that never ticks). *)
let term_pending = Atomic.make false
let main_domain = (Stdlib.Domain.self () :> int)

let () =
  at_exit run_finalizers;
  (* SIGINT and SIGTERM flush through the same [at_exit] path and exit
     with the conventional fatal-signal codes (130 / 143). *)
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> exiting 130))
   with Invalid_argument _ | Sys_error _ -> ());
  (try
     Sys.set_signal Sys.sigterm
       (Sys.Signal_handle
          (fun _ ->
            if Atomic.exchange term_pending true || not (Checkpoint.armed ())
            then exiting 143))
   with Invalid_argument _ | Sys_error _ -> ());
  Budget.set_tick_hook (fun () ->
      (* Worker domains tick too, but only the main domain owns the
         finalizer stack and the checkpoint session. *)
      if Atomic.get term_pending && (Stdlib.Domain.self () :> int) = main_domain then
        exiting 143)

let or_die = function
  | Ok v -> v
  | Error m ->
    Fmt.epr "dcheck: %s@." m;
    exiting 2

(* Located one-line rendering: parse errors carry the file name. *)
let pp_located path ppf (e : Error.t) =
  match e with
  | Error.Parse { line; col; msg } ->
    Fmt.pf ppf "%s:%d:%d: %s" path line col msg
  | e -> Error.pp ppf e

(* Every subcommand runs inside this handler: any failure the toolkit can
   produce becomes a one-line diagnostic and a documented exit code, never
   an uncaught exception. *)
let with_errors ~path k =
  try k () with
  | Error.Detcor_error e ->
    (match e with
    | Error.Resource r ->
      budget_trip_seen := Some (Error.resource_kind_name r.Error.kind)
    | _ -> ());
    Fmt.epr "dcheck: %a@." (pp_located path) e;
    Error.exit_code e
  | Detcor_semantics.Ts.Too_large n ->
    budget_trip_seen := Some "states";
    Fmt.epr "dcheck: state budget exhausted (exploration exceeded --limit %d)@."
      n;
    3
  | Value.Type_error m ->
    Fmt.epr "dcheck: type error: %s@." m;
    2
  | Sys_error m ->
    Fmt.epr "dcheck: %s@." m;
    2
  | Out_of_memory ->
    Fmt.epr "dcheck: out of memory@.";
    3
  | Stack_overflow ->
    Fmt.epr "dcheck: stack overflow@.";
    125
  | Detcor_robust.Failpoint.Injected name ->
    Fmt.epr "dcheck: injected fault at %s@." name;
    125

let with_budget ?memory_mb timeout k =
  match (timeout, memory_mb) with
  | None, None -> k ()
  | timeout, max_memory_mb ->
    Budget.with_budget (Budget.make ?timeout ?max_memory_mb ()) k

(* [guarded ~path timeout k]: the budget goes inside the error handler so
   exhaustion anywhere — including parsing and elaboration — exits 3. *)
let guarded ?memory_mb ~path timeout k =
  with_errors ~path (fun () -> with_budget ?memory_mb timeout k)

(* Chaos sites for the serve load harness: [dcheck.job] crashes the job
   (exit 125 — the injected Internal-class death the serve supervisor
   retries with backoff) and [dcheck.hang] wedges it (the per-job
   watchdog must kill it).  Only the job subcommands call this, so a
   serve daemon inheriting DETCOR_FAILPOINTS never trips its own
   sites. *)
let chaos_site () =
  Failpoint.hit "dcheck.job";
  try Failpoint.hit "dcheck.hang"
  with Failpoint.Injected _ -> Unix.sleep 3600

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:
          "Wall-clock budget for the whole run.  On exhaustion undecided \
           obligations report as unknown and dcheck exits 3.")

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Guarded-command program (.dc).")

let limit_arg =
  Arg.(
    value
    & opt int Detcor_semantics.Ts.default_limit
    & info [ "limit" ] ~docv:"N" ~doc:"State-exploration limit.")

let workers_arg =
  Arg.(
    value
    & opt int 1
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Worker domains for frontier expansion and synthesis scans.  \
           Results are identical for any worker count; a worker that \
           crashes is retried sequentially and the run continues with a \
           smaller pool.")

(* ------------------------------------------------------------------ *)
(* Engine selection and memory budgets.                                *)
(* ------------------------------------------------------------------ *)

type engine_opts = {
  engine : Detcor_semantics.Ts.engine;
  shards : int;
  spill_dir : string option;
  arena_mb : int;
  memory_mb : int option;
}

let engine_conv =
  let parse = function
    | "auto" -> Ok Detcor_semantics.Ts.Auto
    | "packed" -> Ok Detcor_semantics.Ts.Packed
    | "reference" -> Ok Detcor_semantics.Ts.Reference
    | "sharded" -> Ok Detcor_semantics.Ts.Sharded
    | s -> Error (`Msg (Fmt.str "unknown engine %S" s))
  in
  let print ppf e = Fmt.string ppf (Detcor_semantics.Ts.engine_name e) in
  Arg.conv (parse, print)

let engine_term =
  let engine_arg =
    Arg.(
      value
      & opt engine_conv Detcor_semantics.Ts.Auto
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Exploration engine: $(b,auto) (packed with reference \
             fallback), $(b,packed), $(b,reference), or $(b,sharded) — \
             the out-of-core engine whose state and edge arenas are \
             hash-partitioned into shards that spill to disk under \
             $(b,--spill-dir), for explorations past RAM.  All engines \
             produce identical verdicts and state numbering.")
  in
  let shards_arg =
    Arg.(
      value
      & opt int 4
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Shard count for $(b,--engine sharded) (clamped to 1..64).  \
             Shards are the spill and checkpoint unit; more shards mean \
             finer-grained eviction.")
  in
  let spill_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "spill-dir" ] ~docv:"DIR"
          ~doc:
            "Directory for the sharded engine's spill files (checksummed \
             segment arenas, reloaded on demand).  Without it the sharded \
             engine keeps all arenas resident.")
  in
  let arena_mb_arg =
    Arg.(
      value
      & opt int 512
      & info [ "shard-arena-mb" ] ~docv:"MB"
          ~doc:
            "Resident arena budget of the sharded engine, in MiB; sealed \
             segments past it are spilled (least recently used first).  \
             Only enforced when $(b,--spill-dir) is set.")
  in
  let memory_mb_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "memory-budget" ] ~docv:"MB"
          ~doc:
            "Heap budget for the whole run, in MiB; exhaustion exits 3 \
             (a final checkpoint is still written when armed).")
  in
  let make engine shards spill_dir arena_mb memory_mb =
    { engine; shards; spill_dir; arena_mb; memory_mb }
  in
  Term.(
    const make $ engine_arg $ shards_arg $ spill_dir_arg $ arena_mb_arg
    $ memory_mb_arg)

(* Install the process-wide sharded-engine parameters and return the
   engine choice for the ?engine arguments downstream. *)
let apply_engine eo =
  Detcor_semantics.Ts.set_shard_defaults ~shards:eo.shards
    ~spill_dir:eo.spill_dir ~arena_budget_mb:eo.arena_mb;
  eo.engine

(* Fingerprint fragment: everything in the engine options that affects
   the computation's checkpoint/spill state. *)
let engine_params eo =
  [
    Detcor_semantics.Ts.engine_name eo.engine;
    string_of_int eo.shards;
    (match eo.spill_dir with None -> "-" | Some d -> d);
    string_of_int eo.arena_mb;
  ]

(* ------------------------------------------------------------------ *)
(* Crash-safe checkpointing (verify / synthesize / simulate).           *)
(* ------------------------------------------------------------------ *)

type robust_opts = {
  checkpoint : string option;
  interval : float;
  resume : string option;
}

let robust_term =
  let checkpoint_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Periodically write a crash-safe snapshot of the running \
             fixpoints to $(docv) (atomic rename; the file is always \
             either the previous snapshot or a complete new one).  A \
             final snapshot is also written when a resource budget trips, \
             so exit 3 always leaves a resumable file.")
  in
  let interval_arg =
    Arg.(
      value
      & opt float Checkpoint.default_interval
      & info [ "checkpoint-interval" ] ~docv:"SECONDS"
          ~doc:
            "Seconds between periodic snapshots, measured on the \
             monotonic clock (suspends and clock steps cannot starve or \
             flood the writer).")
  in
  let resume_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Resume from a snapshot written by --checkpoint.  The \
             snapshot must come from the same program, subcommand and \
             options (fingerprint-checked); the continued run produces \
             the identical verdict and report.")
  in
  let make checkpoint interval resume = { checkpoint; interval; resume } in
  Term.(const make $ checkpoint_arg $ interval_arg $ resume_arg)

(* Arm the checkpoint session around [k].  The fingerprint binds the
   snapshot to the program source, the subcommand and every option that
   affects the computation (worker count and timeout excluded: both are
   free to change across a resume).  [Fun.protect] makes the final save
   unconditional — in particular a budget trip unwinding through [k]
   persists the mid-fixpoint captures before the process exits 3. *)
let with_checkpoint ~path ~sub ~params robust k =
  match (robust.checkpoint, robust.resume) with
  | None, None -> k ()
  | write, resume ->
    let source =
      try In_channel.with_open_bin path In_channel.input_all
      with Sys_error _ -> ""
    in
    let fingerprint = Checkpoint.digest ("dcheck/1.0.0" :: sub :: source :: params) in
    Checkpoint.start ~interval:robust.interval ?write ?resume ~fingerprint ();
    (* [Fun.protect] covers ordinary unwinding; the finalizer covers
       [Stdlib.exit] paths (SIGTERM's deferred exit in particular), and
       runs before the observability finalizer so the final snapshot is
       on disk before the ledger records the run.  [Checkpoint.stop] is
       idempotent, so reaching both is fine. *)
    add_finalizer Checkpoint.stop;
    Fun.protect ~finally:Checkpoint.stop k

(* ------------------------------------------------------------------ *)
(* Observability options (shared by every subcommand).                  *)
(* ------------------------------------------------------------------ *)

type obs_opts = {
  trace : string option;
  metrics : string option;
  log_level : string option;
  telemetry : string option;
  ledger : string option;
}

let obs_term =
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record a trace of spans and events to $(docv): JSON-lines when \
             the name ends in .jsonl, otherwise a Chrome trace_event array \
             loadable in Perfetto.")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write a JSON snapshot of all counters, gauges and histograms \
             to $(docv) on exit.")
  in
  let log_level_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:
            "Echo trace events at least this severe (debug, info, warn or \
             error) to stderr.")
  in
  let telemetry_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry" ] ~docv:"ADDR"
          ~doc:
            "Serve a live Prometheus text exposition of every counter, \
             gauge and histogram on http://$(docv)/metrics for the \
             duration of the run ($(i,HOST:PORT), $(i,:PORT) or \
             $(i,PORT); port 0 picks a free one, printed on stderr).  \
             Also arms progress heartbeats: per-phase item counts, \
             items/sec and the budget-derived ETA update live as the \
             run advances.  Watch with $(b,dcheck top ADDR).")
  in
  let ledger_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "ledger" ] ~docv:"FILE"
          ~env:(Cmd.Env.info "DCHECK_LEDGER")
          ~doc:
            "Append one JSON line (session fingerprint, subcommand, \
             verdict, exit code, duration, peak RSS, budget trips) to \
             $(docv) when the run ends — on every exit path, including \
             budget exhaustion and SIGINT.  Summarize with $(b,dcheck \
             report FILE).")
  in
  let make trace metrics log_level telemetry ledger =
    { trace; metrics; log_level; telemetry; ledger }
  in
  Term.(
    const make $ trace_arg $ metrics_arg $ log_level_arg $ telemetry_arg
    $ ledger_arg)

(* Sinks requested on the command line (--trace by extension, --log-level
   on stderr). *)
let sinks_of_opts opts =
  let trace_sink =
    match opts.trace with
    | None -> []
    | Some path when Filename.check_suffix path ".jsonl" ->
      [ Sink.to_file Sink.jsonl path ]
    | Some path -> [ Sink.to_file Sink.chrome path ]
  in
  let log_sink =
    match opts.log_level with
    | None -> []
    | Some s -> (
      match Attr.level_of_string s with
      | Some min_level -> [ Sink.stderr_log ~min_level () ]
      | None -> or_die (Error (Fmt.str "unknown log level %S" s)))
  in
  trace_sink @ log_sink

let write_metrics_snapshot opts =
  match opts.metrics with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Jsonx.to_string (Metrics.snapshot ()));
    output_char oc '\n';
    close_out oc

(* Session identity for the run ledger: the same digest scheme the
   checkpoint layer uses, over the toolkit version and the exact command
   line — two invocations match iff they would do the same work. *)
let session_fingerprint ~sub =
  Checkpoint.digest ("dcheck/1.0.0" :: sub :: Array.to_list Sys.argv)

let verdict_of_exit = function
  | 0 -> "holds"
  | 1 -> "fails"
  | 2 -> "error"
  | 3 -> "exhausted"
  | 130 -> "interrupted"
  | 143 -> "terminated"
  | _ -> "internal-error"

(* Install a recording context for the duration of [k] when any
   observability option was given; write the requested outputs on the way
   out.  [extra] prepends sinks (used by [profile] to record into memory
   alongside whatever the user asked for).

   All teardown lives in one run-once finalizer registered with the
   [at_exit] machinery, so the trace, metrics snapshot and ledger record
   survive every exit path: normal returns, [or_die], inline [exit]s,
   budget trips and SIGINT.  [k] returns the exit code, which the
   finalizer folds into the ledger record. *)
let with_obs ?(extra = []) ~sub ~path opts k =
  let recording =
    extra <> [] || opts.trace <> None || opts.metrics <> None
    || opts.log_level <> None
  in
  if (not recording) && opts.telemetry = None && opts.ledger = None then k ()
  else begin
    let t_start = Obs.now_ns () in
    if recording then
      Obs.set_current (Obs.make ~sinks:(extra @ sinks_of_opts opts) ());
    let server =
      match opts.telemetry with
      | None -> None
      | Some addr ->
        Expose.register_process_gauges ();
        Progress.start ();
        let t =
          match Telemetry.start_err addr with
          | Ok t -> t
          | Error (`Invalid m) | Error (`Failed m) -> or_die (Error m)
          | Error (`Addr_in_use port) ->
            (* Still contended after the listener's one retry: a typed
               resource failure (exit 3), not a usage error — the flag
               was fine, the environment was not. *)
            let e =
              Error.Resource { Error.kind = Error.Addr; spent = port; budget = 1 }
            in
            budget_trip_seen := Some (Error.resource_kind_name Error.Addr);
            Fmt.epr "dcheck: %a@." (pp_located path) e;
            exiting (Error.exit_code e)
        in
        Fmt.epr "dcheck: telemetry on http://%s/metrics@."
          (Telemetry.address t);
        Some t
    in
    let finalized = ref false in
    let finalize () =
      if not !finalized then begin
        finalized := true;
        Option.iter Telemetry.stop server;
        Progress.stop ();
        Obs.close ();
        write_metrics_snapshot opts;
        match opts.ledger with
        | None -> ()
        | Some lpath -> (
          let code = !exit_code_seen in
          let states =
            max
              (Metrics.counter_value_by_name "engine.states")
              (Metrics.counter_value_by_name "engine.states_visited")
          in
          let entry =
            {
              Ledger.timestamp = Unix.gettimeofday ();
              session = session_fingerprint ~sub;
              subcommand = sub;
              file = path;
              verdict = verdict_of_exit code;
              exit_code = code;
              duration_s =
                Int64.to_float (Int64.sub (Obs.now_ns ()) t_start) /. 1e9;
              peak_rss_bytes = Expose.peak_rss_bytes ();
              states;
              budget_trip = !budget_trip_seen;
              telemetry_port = Option.map Telemetry.port server;
            }
          in
          try Ledger.append ~path:lpath entry
          with Unix.Unix_error (err, _, _) ->
            Fmt.epr "dcheck: cannot append to ledger %s: %s@." lpath
              (Unix.error_message err))
      end
    in
    add_finalizer finalize;
    match k () with
    | code ->
      exit_code_seen := code;
      finalize ();
      code
    | exception e ->
      exit_code_seen := 125;
      finalize ();
      raise e
  end

(* ------------------------------------------------------------------ *)
(* info                                                                *)
(* ------------------------------------------------------------------ *)

let info_cmd =
  let run path limit timeout eopts obs =
    with_obs ~sub:"info" ~path obs @@ fun () ->
    guarded ?memory_mb:eopts.memory_mb ~path timeout @@ fun () ->
    let engine = apply_engine eopts in
    let e = Elaborate.load_file path in
    Fmt.pr "program %s@." (Program.name e.program);
    Fmt.pr "  variables:     %d@." (List.length (Program.variables e.program));
    List.iter
      (fun (x, d) -> Fmt.pr "    %-12s %a@." x Domain.pp d)
      (Program.var_decls e.program);
    Fmt.pr "  actions:       %d@." (List.length (Program.actions e.program));
    List.iter
      (fun ac -> Fmt.pr "    %s@." (Action.name ac))
      (Program.actions e.program);
    Fmt.pr "  fault actions: %d@." (List.length (Fault.actions e.faults));
    List.iter
      (fun ac -> Fmt.pr "    %s@." (Action.name ac))
      (Fault.actions e.faults);
    Fmt.pr "  state space:   %d states@." (Program.space_size e.program);
    Fmt.pr "  invariant:     %s@." (Pred.name e.invariant);
    Fmt.pr "  specification: %s@." (Spec.name e.spec);
    let issues = Program.well_formed e.program in
    if issues <> [] then begin
      Fmt.pr "  WARNING: ill-formed actions:@.";
      List.iter (fun m -> Fmt.pr "    %s@." m) issues
    end;
    (* Which engine the auto dispatch actually picks for this program, and
       why it fell back to the reference engine if it did.  A state space
       exceeding --limit is NOT swallowed here: it propagates to the shared
       handler and exits 3 like every other exhausted budget. *)
    let module Ts = Detcor_semantics.Ts in
    let ts =
      Ts.of_pred ~limit ~engine
        (Fault.compose e.program e.faults)
        ~from:e.invariant
    in
    Fmt.pr "  engine:        %s@." (Ts.engine_name (Ts.engine_of ts));
    (match Ts.shard_stats ts with
    | None -> ()
    | Some (k, spills, bytes, reloads) ->
      Fmt.pr "  shards:        %d (%d spills, %d bytes spilled, %d reloads)@."
        k spills bytes reloads);
    (match Ts.fallback_reason ts with
    | None -> ()
    | Some reason ->
      Fmt.pr "  WARNING: packed engine fell back to reference: %s@." reason);
    0
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Summarize a guarded-command program.")
    Term.(
      const run $ file_arg $ limit_arg $ timeout_arg $ engine_term $ obs_term)

(* ------------------------------------------------------------------ *)
(* verify                                                              *)
(* ------------------------------------------------------------------ *)

let tolerance_conv =
  let parse s =
    match Spec.tolerance_of_string s with
    | Some t -> Ok (Some t)
    | None when s = "all" -> Ok None
    | None -> Error (`Msg (Fmt.str "unknown tolerance %S" s))
  in
  let print ppf = function
    | Some t -> Spec.pp_tolerance ppf t
    | None -> Fmt.string ppf "all"
  in
  Arg.conv (parse, print)

let tolerance_arg =
  Arg.(
    value
    & opt tolerance_conv None
    & info [ "t"; "tolerance" ] ~docv:"CLASS"
        ~doc:"Tolerance class: masking, failsafe, nonmasking, or all.")

let explain_arg =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:"On failure, print a witness trace for each failing obligation.")

let verify_cmd =
  let run path tol limit explain timeout workers eopts robust obs =
    with_obs ~sub:"verify" ~path obs @@ fun () ->
    guarded ?memory_mb:eopts.memory_mb ~path timeout @@ fun () ->
    chaos_site ();
    let engine = apply_engine eopts in
    with_checkpoint ~path ~sub:"verify"
      ~params:
        ((match tol with
         | Some t -> Fmt.str "%a" Spec.pp_tolerance t
         | None -> "all")
        :: string_of_int limit :: engine_params eopts)
      robust
    @@ fun () ->
    let e = Elaborate.load_file path in
    let classes =
      match tol with
      | Some t -> [ t ]
      | None -> [ Spec.Failsafe; Spec.Nonmasking; Spec.Masking ]
    in
    let explain_failures report =
      if explain then begin
        (* Witnesses are found on the composed p [] F system over the
           fault span: it contains every state either checker explored. *)
        let span =
          Tolerance.fault_span ~limit ~workers ~engine e.program
            ~faults:e.faults ~from:e.invariant
        in
        List.iter
          (fun (item : Tolerance.item) ->
            match item.outcome with
            | Detcor_semantics.Check.Holds | Detcor_semantics.Check.Unknown _
              ->
              ()
            | Detcor_semantics.Check.Fails v -> (
              match Detcor_semantics.Explain.violation span.ts_pf v with
              | Some w ->
                Fmt.pr "witness for %S:@.%a@.@." item.label
                  Detcor_semantics.Explain.pp w
              | None ->
                Fmt.pr "witness for %S: (violation site not reachable in \
                        p[]F from the invariant)@.@."
                  item.label))
          (Tolerance.failures report)
      end
    in
    let fails = ref false in
    let unknown = ref false in
    List.iter
      (fun tol ->
        let report =
          Tolerance.check ~limit ~workers ~engine e.program ~spec:e.spec
            ~invariant:e.invariant ~faults:e.faults ~tol
        in
        Fmt.pr "%a@.@." Tolerance.pp_report report;
        if Tolerance.failures report <> [] then begin
          fails := true;
          explain_failures report
        end;
        if Tolerance.unknowns report <> [] then unknown := true)
      classes;
    if !fails then begin
      Fmt.epr "dcheck: verification failed@.";
      1
    end
    else if !unknown then begin
      Fmt.epr "dcheck: verification incomplete (resource budget exhausted)@.";
      3
    end
    else 0
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Check F-tolerance of the program against its specification.")
    Term.(
      const run $ file_arg $ tolerance_arg $ limit_arg $ explain_arg
      $ timeout_arg $ workers_arg $ engine_term $ robust_term $ obs_term)

(* ------------------------------------------------------------------ *)
(* components                                                          *)
(* ------------------------------------------------------------------ *)

let components_cmd =
  let run path limit timeout obs =
    with_obs ~sub:"components" ~path obs @@ fun () ->
    guarded ~path timeout @@ fun () ->
    let e = Elaborate.load_file path in
    let sspec = Spec.safety (Spec.smallest_safety_containing e.spec) in
    let span =
      Tolerance.fault_span ~limit e.program ~faults:e.faults ~from:e.invariant
    in
    let ts_p =
      Detcor_semantics.Ts.build ~limit e.program ~from:span.states
    in
    Fmt.pr "fault span: %d states@.@." (List.length span.states);
    Fmt.pr "Detectors (weakest detection predicate per action):@.";
    List.iter
      (fun ac ->
        let wdp = Detection_predicate.weakest ~sspec ac in
        let holding =
          List.length (List.filter (Pred.holds wdp) span.states)
        in
        Fmt.pr "  %-16s safe in %d/%d span states@." (Action.name ac) holding
          (List.length span.states))
      (Program.actions e.program);
    Fmt.pr "@.Corrector (invariant as correction predicate):@.";
    let extracted =
      Extraction.corrector_for_invariant ts_p ~invariant:e.invariant
    in
    Fmt.pr "  '%s corrects %s': %a@."
      (Pred.name (Corrector.witness extracted.corrector))
      (Pred.name (Corrector.correction extracted.corrector))
      Detcor_semantics.Check.pp_outcome extracted.outcome;
    0
  in
  Cmd.v
    (Cmd.info "components"
       ~doc:"Extract detector and corrector components from the program.")
    Term.(const run $ file_arg $ limit_arg $ timeout_arg $ obs_term)

(* ------------------------------------------------------------------ *)
(* synthesize                                                          *)
(* ------------------------------------------------------------------ *)

let synthesize_cmd =
  let run path tol limit timeout workers eopts robust obs =
    with_obs ~sub:"synthesize" ~path obs @@ fun () ->
    guarded ?memory_mb:eopts.memory_mb ~path timeout @@ fun () ->
    chaos_site ();
    let engine = apply_engine eopts in
    let tol = match tol with Some t -> t | None -> Spec.Masking in
    with_checkpoint ~path ~sub:"synthesize"
      ~params:
        (Fmt.str "%a" Spec.pp_tolerance tol
        :: string_of_int limit :: engine_params eopts)
      robust
    @@ fun () ->
    let e = Elaborate.load_file path in
    let result =
      match tol with
      | Spec.Failsafe ->
        Detcor_synthesis.Synthesize.add_failsafe ~limit ~workers ~engine
          e.program ~spec:e.spec ~invariant:e.invariant ~faults:e.faults
      | Spec.Nonmasking ->
        Detcor_synthesis.Synthesize.add_nonmasking ~limit ~workers ~engine
          e.program ~spec:e.spec ~invariant:e.invariant ~faults:e.faults
      | Spec.Masking ->
        Detcor_synthesis.Synthesize.add_masking ~limit ~workers ~engine
          e.program ~spec:e.spec ~invariant:e.invariant ~faults:e.faults
    in
    match result with
    | Error (Detcor_synthesis.Synthesize.Exhausted r) ->
      (* same contract as every other exhausted budget: exit 3 *)
      Fmt.epr "dcheck: %a@." Detcor_robust.Error.pp_resource r;
      3
    | Error f ->
      Fmt.epr "synthesis failed: %a@." Detcor_synthesis.Synthesize.pp_failure f;
      Fmt.epr "dcheck: synthesis failed@.";
      1
    | Ok r ->
      Fmt.pr "synthesized %s@." (Program.name r.program);
      List.iter
        (fun (ac, g) ->
          Fmt.pr "  detector added to %-12s (%s)@." ac (Pred.name g))
        r.added_detectors;
      if r.recovery_states > 0 then
        Fmt.pr "  corrector added: recovery from %d states@." r.recovery_states;
      if r.repair_iterations > 0 then
        Fmt.pr "  counterexample-guided repair: %d iteration%s@."
          r.repair_iterations
          (if r.repair_iterations = 1 then "" else "s");
      Fmt.pr "@.%a@." Tolerance.pp_report r.report;
      0
  in
  Cmd.v
    (Cmd.info "synthesize"
       ~doc:
         "Add fail-safe, nonmasking or masking tolerance to the program \
          (default: masking).")
    Term.(const run $ file_arg $ tolerance_arg $ limit_arg $ timeout_arg
          $ workers_arg $ engine_term $ robust_term $ obs_term)

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)
(* ------------------------------------------------------------------ *)

let simulate_cmd =
  let runs_arg =
    Arg.(value & opt int 100 & info [ "runs" ] ~docv:"N" ~doc:"Number of runs.")
  in
  let steps_arg =
    Arg.(value & opt int 200 & info [ "steps" ] ~docv:"N" ~doc:"Steps per run.")
  in
  let prob_arg =
    Arg.(
      value
      & opt float 0.1
      & info [ "fault-prob" ] ~docv:"P" ~doc:"Per-step fault probability.")
  in
  let max_faults_arg =
    Arg.(
      value
      & opt int 1
      & info [ "max-faults" ] ~docv:"K" ~doc:"Fault budget per run.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"Random seed.")
  in
  let record_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "record" ] ~docv:"FILE"
          ~doc:
            "Write the sampled runs as a detcor stream to $(docv), \
             replayable offline with $(b,dcheck monitor --stream).")
  in
  let run path runs steps prob max_faults seed record timeout eopts robust obs
      =
    with_obs ~sub:"simulate" ~path obs @@ fun () ->
    guarded ?memory_mb:eopts.memory_mb ~path timeout @@ fun () ->
    chaos_site ();
    let (_ : Detcor_semantics.Ts.engine) = apply_engine eopts in
    with_checkpoint ~path ~sub:"simulate"
      ~params:
        [
          string_of_int runs; string_of_int steps; string_of_float prob;
          string_of_int max_faults; string_of_int seed;
        ]
      robust
    @@ fun () ->
    let e = Elaborate.load_file path in
    let inits =
      List.filter (Pred.holds e.invariant) (Program.states e.program)
    in
    match inits with
    | [] ->
      Fmt.epr "dcheck: no state satisfies the invariant@.";
      2
    | init :: _ ->
      let sspec = Spec.safety (Spec.smallest_safety_containing e.spec) in
      let open Detcor_sim in
      let samples =
        Runner.sample
          ~config:{ Runner.default with seed; max_steps = steps }
          runs e.program ~faults:e.faults
          ~policy:(Injector.Random { probability = prob; max_faults })
          ~init
      in
      let violations =
        List.filter
          (fun r -> Monitor.first_safety_violation r sspec <> None)
          samples
      in
      let settled =
        List.filter_map
          (fun (r : Runner.run) ->
            let states = Detcor_semantics.Trace.states r.trace in
            let rec last_false i best = function
              | [] -> best
              | st :: rest ->
                last_false (i + 1)
                  (if Pred.holds e.invariant st then best else Some i)
                  rest
            in
            match last_false 0 None states with
            | None -> Some 0
            | Some i ->
              if i < List.length states - 1 then Some (i + 1) else None)
          samples
      in
      (match record with
      | None -> ()
      | Some file ->
        let oc = open_out file in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            Stream.write_header oc ~program:(Program.name e.program);
            List.iteri (fun i r -> Stream.write_run oc ~index:i r) samples);
        Fmt.pr "recorded %d runs to %s@." runs file);
      Fmt.pr "runs: %d (%d steps each, fault prob %.2f, budget %d)@." runs
        steps prob max_faults;
      Fmt.pr "safety violations: %d/%d@." (List.length violations) runs;
      Fmt.pr "runs ending inside the invariant: %d/%d@."
        (List.length settled) runs;
      Fmt.pr "steps to re-enter the invariant: %a@." Stats.pp_option
        (Stats.summarize settled);
      0
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Fault-injection simulation with online safety monitoring.")
    Term.(
      const run $ file_arg $ runs_arg $ steps_arg $ prob_arg $ max_faults_arg
      $ seed_arg $ record_arg $ timeout_arg $ engine_term $ robust_term
      $ obs_term)

(* ------------------------------------------------------------------ *)
(* monitor                                                             *)
(* ------------------------------------------------------------------ *)

(* Offline syndrome monitoring of recorded streams.  The program's whole
   witness family — invariant violation, the specification's bad states,
   and one unsafe(a) localization witness per action — is compiled into a
   single syndrome evaluator; the stream's runs are then swept in batches
   of states, each batch reporting which witnesses fired.  Latencies are
   measured per injected fault and exported through the metrics snapshot;
   the first witness to fire after each fault feeds the localization
   table. *)
let monitor_cmd =
  let stream_arg =
    Arg.(
      value
      & opt string "-"
      & info [ "stream" ] ~docv:"FILE"
          ~doc:
            "Recorded run stream to monitor (see $(b,dcheck simulate \
             --record)); $(b,-) reads standard input.")
  in
  let batch_arg =
    Arg.(
      value
      & opt int 256
      & info [ "batch" ] ~docv:"N" ~doc:"States per syndrome batch.")
  in
  let h_detect = Metrics.histogram "monitor.detection_latency" in
  let h_correct = Metrics.histogram "monitor.correction_latency" in
  let c_records = Metrics.counter "monitor.records" in
  let c_runs = Metrics.counter "monitor.runs" in
  let c_faults = Metrics.counter "monitor.faults" in
  let c_violations = Metrics.counter "monitor.safety_violations" in
  let run path stream batch_size timeout obs =
    with_obs ~sub:"monitor" ~path obs @@ fun () ->
    guarded ~path timeout @@ fun () ->
    if batch_size <= 0 then begin
      Fmt.epr "dcheck: --batch must be positive@.";
      exiting 2
    end;
    let e = Elaborate.load_file path in
    let sspec = Spec.safety (Spec.smallest_safety_containing e.spec) in
    let open Detcor_sim in
    let family =
      Pred.not_ e.invariant
      :: Pred.make (Fmt.str "bad(%s)" (Safety.name sspec)) (Safety.bad_state sspec)
      :: List.map
           (fun ac -> Detection_predicate.unsafe ~sspec ac)
           (Program.actions e.program)
    in
    let syn = Syndrome.compile ~program:e.program family in
    let names = Syndrome.pred_names syn in
    let m = Array.length names in
    Fmt.pr "monitoring %s with %d witnesses (%s)@." (Program.name e.program) m
      (if Syndrome.is_packed syn then "packed" else "reference");
    Array.iteri (fun j n -> Fmt.pr "  [%d] %s@." j n) names;
    let stream_path, ic, close_ic =
      if stream = "-" then ("<stdin>", stdin, fun () -> ())
      else (stream, open_in stream, fun () -> ())
    in
    let close_ic = if stream = "-" then close_ic else fun () -> close_in ic in
    (* Stream problems (unreadable file, malformed records) are located in
       the stream, not the program: a nested handler re-renders them with
       the stream path and its own exit code. *)
    Fun.protect ~finally:close_ic @@ fun () ->
    with_errors ~path:stream_path @@ fun () ->
    let detections = ref [] and corrections = ref [] in
    let violations = ref 0 and total_states = ref 0 and total_faults = ref 0 in
    let nruns = ref 0 in
    (* first-fired witness -> (fault action -> count) *)
    let localization : (string, (string, int) Hashtbl.t) Hashtbl.t =
      Hashtbl.create 7
    in
    let localize witness fault_action =
      let inner =
        match Hashtbl.find_opt localization witness with
        | Some t -> t
        | None ->
          let t = Hashtbl.create 7 in
          Hashtbl.add localization witness t;
          t
      in
      Hashtbl.replace inner fault_action
        (1 + Option.value ~default:0 (Hashtbl.find_opt inner fault_action))
    in
    let monitor_run () (r : Stream.run) =
      let rr = Stream.to_run r in
      let states = Detcor_semantics.Trace.states rr.trace in
      let n = List.length states in
      let nonzero = Array.make n false in
      let fired_low = Array.make n (-1) in
      let inv_ok = Array.make n true in
      (* Sweep the run in state batches; each batch line reports the
         OR-syndrome over its states and the per-witness fire counts. *)
      let rec batches k base = function
        | [] -> ()
        | rest ->
          let rec take acc i = function
            | st :: more when i < batch_size -> take (st :: acc) (i + 1) more
            | more -> (List.rev acc, more)
          in
          let chunk, more = take [] 0 rest in
          let b = Syndrome.of_states syn chunk in
          let len = Syndrome.length b in
          let vec =
            String.init m (fun j ->
                if Detcor_semantics.Bitset.any (Syndrome.column b j) then '1'
                else '0')
          in
          let fired =
            List.filter_map
              (fun j ->
                let c = Detcor_semantics.Bitset.cardinal (Syndrome.column b j) in
                if c = 0 then None else Some (Fmt.str "%s=%d" names.(j) c))
              (List.init m Fun.id)
          in
          Fmt.pr "  batch %d: states=%d syndrome=%s%s@." k len vec
            (match fired with
            | [] -> ""
            | fs -> " fired: " ^ String.concat " " fs);
          for i = 0 to len - 1 do
            let g = base + i in
            inv_ok.(g) <- not (Syndrome.get b ~state:i ~pred:0);
            if Syndrome.nonzero b ~state:i then begin
              nonzero.(g) <- true;
              fired_low.(g) <-
                (match Syndrome.fired b ~state:i with j :: _ -> j | [] -> -1)
            end
          done;
          batches (k + 1) (base + len) more
      in
      let record_arr = Array.of_list r.records in
      Fmt.pr "run %d: states=%d faults=%d@." r.index n
        (List.length rr.fault_steps);
      batches 0 0 states;
      (* Per injected fault: steps from the faulty state to the first
         fired witness (detection) and to invariant re-entry
         (correction). *)
      List.iter
        (fun s ->
          let fs = s + 1 in
          let fault_action = record_arr.(s).Stream.action in
          let rec find ok j = if j >= n then None else if ok j then Some j else find ok (j + 1) in
          (match find (fun j -> nonzero.(j)) fs with
          | Some j ->
            detections := (j - fs) :: !detections;
            Metrics.observe h_detect (j - fs);
            if fired_low.(j) >= 0 then localize names.(fired_low.(j)) fault_action
          | None -> ());
          match find (fun j -> inv_ok.(j)) fs with
          | Some j ->
            corrections := (j - fs) :: !corrections;
            Metrics.observe h_correct (j - fs)
          | None -> ())
        rr.fault_steps;
      (match Monitor.first_safety_violation rr sspec with
      | Some i ->
        incr violations;
        Fmt.pr "  safety violated at state %d@." i
      | None -> ());
      total_states := !total_states + n;
      total_faults := !total_faults + List.length rr.fault_steps;
      incr nruns;
      Metrics.incr ~by:n c_records;
      Metrics.incr ~by:(List.length rr.fault_steps) c_faults;
      Metrics.incr c_runs
    in
    let (), _program =
      (* Heartbeats report sweep throughput: states monitored so far and
         the derived states/sec. *)
      Progress.with_phase "monitor.sweep"
        (fun () -> [ ("states", !total_states); ("runs", !nruns) ])
        (fun () ->
          Stream.fold ic ~init:() ~f:monitor_run
            ~on_torn:(fun line ->
              Fmt.epr
                "dcheck: warning: torn record at end of stream (line %d) — \
                 salvaged the complete prefix@."
                line))
    in
    if !violations > 0 then Metrics.incr ~by:!violations c_violations;
    Fmt.pr "runs: %d  states: %d  faults: %d@." !nruns !total_states
      !total_faults;
    Fmt.pr "safety violations: %d/%d@." !violations !nruns;
    Fmt.pr "detection latency:  %a@." Stats.pp_option
      (Stats.summarize !detections);
    Fmt.pr "correction latency: %a@." Stats.pp_option
      (Stats.summarize !corrections);
    Fmt.pr "fault localization:@.";
    if Hashtbl.length localization = 0 then Fmt.pr "  (no faults detected)@."
    else
      Hashtbl.fold (fun w inner acc -> (w, inner) :: acc) localization []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      |> List.iter (fun (w, inner) ->
             let classes =
               Hashtbl.fold (fun f c acc -> (f, c) :: acc) inner []
               |> List.sort (fun (a, _) (b, _) -> String.compare a b)
               |> List.map (fun (f, c) -> Fmt.str "%s:%d" f c)
             in
             Fmt.pr "  %s -> %s@." w (String.concat " " classes));
    if !violations > 0 then 1 else 0
  in
  Cmd.v
    (Cmd.info "monitor"
       ~doc:
         "Replay a recorded run stream through the compiled syndrome \
          monitor: per-batch witness vectors, per-fault latencies, and a \
          fault-localization summary.")
    Term.(
      const run $ file_arg $ stream_arg $ batch_arg $ timeout_arg $ obs_term)

(* ------------------------------------------------------------------ *)
(* profile                                                             *)
(* ------------------------------------------------------------------ *)

(* Run the verification pipeline under an in-memory recording context and
   print the per-phase breakdown.  Verdicts are printed too, so a profile
   run doubles as a verify run. *)
let profile_cmd =
  let run path tol limit timeout obs =
    let mem, records = Sink.memory () in
    with_obs ~extra:[ mem ] ~sub:"profile" ~path obs @@ fun () ->
    guarded ~path timeout @@ fun () ->
    let e = Elaborate.load_file path in
    let classes =
      match tol with
      | Some t -> [ t ]
      | None -> [ Spec.Failsafe; Spec.Nonmasking; Spec.Masking ]
    in
    let reports = ref [] in
    List.iter
      (fun tol ->
        let report =
          Tolerance.check ~limit e.program ~spec:e.spec ~invariant:e.invariant
            ~faults:e.faults ~tol
        in
        reports := (tol, report) :: !reports)
      classes;
    Fmt.pr "profile of %s (%s)@.@." path (Program.name e.program);
    Fmt.pr "%a@.@." Profile.pp_table (records ());
    Fmt.pr "engine counters:@.";
    List.iter
      (fun name ->
        let v = Metrics.counter_value_by_name name in
        if v > 0 then Fmt.pr "  %-28s %d@." name v)
      [
        "engine.builds"; "engine.states_visited"; "engine.edges";
        "engine.pred_cache.hits"; "engine.pred_cache.misses";
        "engine.enabled_cache.hits"; "engine.enabled_cache.misses";
        "engine.fallbacks";
      ];
    Fmt.pr "@.";
    List.iter
      (fun (tol, report) ->
        Fmt.pr "%a: %s@." Spec.pp_tolerance tol
          (if Tolerance.verdict report then "holds"
           else if Tolerance.failures report <> [] then "FAILS"
           else "UNKNOWN"))
      (List.rev !reports);
    0
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Verify the program under tracing and print a per-phase time/space \
          breakdown.")
    Term.(const run $ file_arg $ tolerance_arg $ limit_arg $ timeout_arg
          $ obs_term)

(* ------------------------------------------------------------------ *)
(* graph                                                               *)
(* ------------------------------------------------------------------ *)

let graph_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write DOT to FILE (default stdout).")
  in
  let faults_arg =
    Arg.(
      value & flag
      & info [ "with-faults" ] ~doc:"Include fault transitions (dashed).")
  in
  let run path out with_faults limit timeout obs =
    with_obs ~sub:"graph" ~path obs @@ fun () ->
    guarded ~path timeout @@ fun () ->
    let e = Elaborate.load_file path in
    let program =
      if with_faults then Fault.compose e.program e.faults else e.program
    in
    let ts =
      Detcor_semantics.Ts.of_pred ~limit program ~from:e.invariant
    in
    let style =
      {
        Detcor_semantics.Dot.highlight = [ (e.invariant, "palegreen") ];
        dashed_actions =
          (if with_faults then Fault.action_names e.faults else []);
        show_action_labels = true;
      }
    in
    (match out with
    | Some file ->
      Detcor_semantics.Dot.to_file ~style ts file;
      Fmt.pr "wrote %s (%d states)@." file (Detcor_semantics.Ts.num_states ts)
    | None -> print_string (Detcor_semantics.Dot.to_string ~style ts));
    0
  in
  Cmd.v
    (Cmd.info "graph"
       ~doc:
         "Export the reachable transition system (from the invariant) as \
          Graphviz DOT; invariant states are highlighted.")
    Term.(
      const run $ file_arg $ out_arg $ faults_arg $ limit_arg $ timeout_arg
      $ obs_term)

(* ------------------------------------------------------------------ *)
(* report                                                              *)
(* ------------------------------------------------------------------ *)

let pp_bytes ppf n =
  if n >= 1 lsl 30 then Fmt.pf ppf "%.1fGiB" (float_of_int n /. 1073741824.0)
  else if n >= 1 lsl 20 then Fmt.pf ppf "%.1fMiB" (float_of_int n /. 1048576.0)
  else if n >= 1 lsl 10 then Fmt.pf ppf "%.1fKiB" (float_of_int n /. 1024.0)
  else Fmt.pf ppf "%dB" n

let pp_stamp ppf ts =
  let tm = Unix.localtime ts in
  Fmt.pf ppf "%04d-%02d-%02d %02d:%02d:%02d" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let report_cmd =
  let ledger_pos =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"LEDGER"
          ~doc:"Run ledger written with $(b,--ledger) / $(b,DCHECK_LEDGER).")
  in
  let last_arg =
    Arg.(
      value
      & opt int 10
      & info [ "last" ] ~docv:"N"
          ~doc:"List the $(docv) most recent runs (0 hides the listing).")
  in
  let run lpath last =
    with_errors ~path:lpath @@ fun () ->
    let entries, bad = Ledger.load ~path:lpath in
    if bad > 0 then
      Fmt.epr "dcheck: %s: skipped %d malformed line%s@." lpath bad
        (if bad = 1 then "" else "s");
    if entries = [] then begin
      Fmt.pr "ledger %s: no entries@." lpath;
      0
    end
    else begin
      let n = List.length entries in
      let total_s =
        List.fold_left (fun a (e : Ledger.entry) -> a +. e.duration_s) 0.0
          entries
      in
      let peak =
        List.fold_left
          (fun a (e : Ledger.entry) -> max a e.peak_rss_bytes)
          0 entries
      in
      let trips =
        List.length
          (List.filter (fun (e : Ledger.entry) -> e.budget_trip <> None) entries)
      in
      Fmt.pr "ledger %s: %d runs, %.2fs total, peak RSS %a, %d budget trips@.@."
        lpath n total_s pp_bytes peak trips;
      (* One row per (subcommand, verdict), counts and time — the shape of
         the workload at a glance. *)
      let by_key : (string * string, int * float) Hashtbl.t =
        Hashtbl.create 16
      in
      List.iter
        (fun (e : Ledger.entry) ->
          let key = (e.subcommand, e.verdict) in
          let c, d =
            Option.value ~default:(0, 0.0) (Hashtbl.find_opt by_key key)
          in
          Hashtbl.replace by_key key (c + 1, d +. e.duration_s))
        entries;
      Fmt.pr "%-12s %-12s %6s %10s@." "subcommand" "verdict" "runs" "total";
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_key []
      |> List.sort compare
      |> List.iter (fun ((sub, verdict), (c, d)) ->
             Fmt.pr "%-12s %-12s %6d %9.2fs@." sub verdict c d);
      if last > 0 then begin
        let recent =
          let rec take k = function
            | e :: rest when k > 0 -> e :: take (k - 1) rest
            | _ -> []
          in
          take last (List.rev entries)
        in
        Fmt.pr "@.last %d runs (most recent first):@."
          (List.length recent);
        List.iter
          (fun (e : Ledger.entry) ->
            Fmt.pr "  %a  %-10s %-22s %-11s exit %d  %7.2fs  %a%s@." pp_stamp
              e.timestamp e.subcommand
              (Filename.basename e.file)
              e.verdict e.exit_code e.duration_s pp_bytes e.peak_rss_bytes
              (match e.budget_trip with
              | Some k -> "  [" ^ k ^ " budget tripped]"
              | None -> ""))
          recent
      end;
      0
    end
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Summarize a run ledger: per-subcommand verdict counts, total \
          time, peak RSS and budget trips, plus the most recent runs.")
    Term.(const run $ ledger_pos $ last_arg)

(* ------------------------------------------------------------------ *)
(* top                                                                 *)
(* ------------------------------------------------------------------ *)

(* One blocking scrape of a peer's exposition endpoint.  Returns the
   response body (headers stripped), or [None] when the endpoint cannot
   be reached — which during polling means the watched run has ended. *)
let scrape_once ip port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect sock (Unix.ADDR_INET (ip, port)) with
      | exception Unix.Unix_error _ -> None
      | () ->
        let req = "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n" in
        ignore (Unix.write_substring sock req 0 (String.length req));
        let buf = Buffer.create 8192 in
        let bytes = Bytes.create 8192 in
        let rec drain () =
          match Unix.read sock bytes 0 8192 with
          | 0 -> ()
          | n ->
            Buffer.add_subbytes buf bytes 0 n;
            drain ()
          | exception Unix.Unix_error _ -> ()
        in
        drain ();
        let resp = Buffer.contents buf in
        let body =
          let n = String.length resp in
          let rec find i =
            if i + 4 > n then None
            else if String.sub resp i 4 = "\r\n\r\n" then Some (i + 4)
            else find (i + 1)
          in
          match find 0 with
          | Some i -> String.sub resp i (n - i)
          | None -> ""
        in
        if body = "" then None else Some body)

let top_cmd =
  let addr_pos =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ADDR"
          ~doc:
            "Telemetry address of a running dcheck, as printed by \
             $(b,--telemetry).")
  in
  let interval_arg =
    Arg.(
      value
      & opt float 1.0
      & info [ "interval" ] ~docv:"SECONDS" ~doc:"Seconds between polls.")
  in
  let iterations_arg =
    Arg.(
      value
      & opt int 0
      & info [ "iterations" ] ~docv:"N"
          ~doc:
            "Stop after $(docv) polls (0: poll until interrupted or the \
             watched run ends).")
  in
  let run addr interval iterations =
    match Telemetry.parse_addr addr with
    | Error m ->
      Fmt.epr "dcheck: %s@." m;
      2
    | Ok (_host, ip, port) ->
      let value samples name =
        List.find_map
          (fun (s : Expose.sample) ->
            if s.metric = name then Some s.value else None)
          samples
      in
      let label samples name key =
        List.find_map
          (fun (s : Expose.sample) ->
            if s.metric = name then List.assoc_opt key s.labels else None)
          samples
      in
      let show samples poll =
        let num name =
          match value samples name with
          | Some v -> Fmt.str "%.0f" v
          | None -> "-"
        in
        let phase =
          Option.value ~default:"idle" (label samples "obs_phase_info" "phase")
        in
        let eta =
          match value samples "obs_phase_eta_seconds" with
          | Some v when v >= 0.0 -> Fmt.str "%.1fs" v
          | _ -> "-"
        in
        let mem name =
          match value samples name with
          | Some v -> Fmt.str "%a" pp_bytes (int_of_float v)
          | None -> "-"
        in
        Fmt.pr "[%4d] phase=%-14s items=%-9s rate=%s/s eta=%-7s \
                states=%-9s heap=%-8s rss=%s@."
          poll phase
          (num "obs_phase_items")
          (num "obs_phase_rate")
          eta
          (num "engine_states_total")
          (mem "process_heap_bytes")
          (mem "process_peak_rss_bytes")
      in
      let rec poll i misses =
        if iterations > 0 && i > iterations then 0
        else
          match scrape_once ip port with
          | None ->
            if i = 1 then begin
              Fmt.epr "dcheck: no telemetry endpoint at %s@." addr;
              2
            end
            else if misses >= 1 then begin
              (* Two consecutive failed scrapes: the watched run ended. *)
              Fmt.pr "endpoint %s gone; run ended@." addr;
              0
            end
            else begin
              Unix.sleepf interval;
              poll (i + 1) (misses + 1)
            end
          | Some body ->
            let samples =
              String.split_on_char '\n' body
              |> List.filter_map (fun line ->
                     match Expose.parse_line line with
                     | Ok (Some s) -> Some s
                     | Ok None | Error _ -> None)
            in
            show samples i;
            if iterations > 0 && i >= iterations then 0
            else begin
              Unix.sleepf interval;
              poll (i + 1) 0
            end
      in
      poll 1 0
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Poll a running dcheck's $(b,--telemetry) endpoint and display \
          live progress: current phase, item counts, rate, ETA and \
          process gauges.")
    Term.(const run $ addr_pos $ interval_arg $ iterations_arg)

(* ------------------------------------------------------------------ *)
(* serve / client                                                      *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let listen_arg =
    Arg.(
      value
      & opt string "127.0.0.1:0"
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:
            "Address to serve the job protocol on ($(b,HOST:PORT), \
             $(b,:PORT) or $(b,PORT); port 0 picks a free port).  The \
             bound address is printed on stdout once listening.")
  in
  let spool_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "spool" ] ~docv:"DIR"
          ~doc:
            "Crash-safe job spool: accepted jobs, their outputs and \
             their checkpoints live here, so a killed daemon restarted \
             on the same spool re-adopts and finishes every accepted \
             job.")
  in
  let slots_arg =
    Arg.(
      value
      & opt int Detcor_serve.Server.default_config.Detcor_serve.Server.slots
      & info [ "slots" ] ~docv:"N"
          ~doc:"Concurrently running worker subprocesses.")
  in
  let queue_max_arg =
    Arg.(
      value
      & opt int
          Detcor_serve.Server.default_config.Detcor_serve.Server.queue_max
      & info [ "queue-max" ] ~docv:"N"
          ~doc:
            "Queued-job ceiling: submissions beyond it are refused with \
             a typed $(b,overloaded) reply, never queued unboundedly.")
  in
  let tenant_max_arg =
    Arg.(
      value
      & opt int
          Detcor_serve.Server.default_config.Detcor_serve.Server.tenant_max
      & info [ "tenant-max" ] ~docv:"N"
          ~doc:"Live (queued or running) jobs allowed per tenant.")
  in
  let watchdog_arg =
    Arg.(
      value
      & opt (some float) (Some 30.0)
      & info [ "watchdog" ] ~docv:"SECONDS"
          ~doc:
            "Per-job wall-clock ceiling; a worker that outlives it is \
             killed (SIGTERM, then SIGKILL) and retried under the \
             backoff policy.")
  in
  let retries_arg =
    Arg.(
      value
      & opt int
          Detcor_serve.Server.default_config.Detcor_serve.Server.policy
            .Detcor_robust.Watchdog.max_retries
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retries (with exponential backoff) for a worker that dies \
             without a verdict before the job is marked failed.")
  in
  let run listen spool slots queue_max tenant_max watchdog retries obs =
    with_obs ~sub:"serve" ~path:spool obs @@ fun () ->
    with_errors ~path:spool @@ fun () ->
    let cfg =
      {
        Detcor_serve.Server.default_config with
        Detcor_serve.Server.listen;
        spool;
        slots = max 1 slots;
        queue_max;
        tenant_max;
        policy =
          {
            Detcor_robust.Watchdog.default_policy with
            Detcor_robust.Watchdog.max_retries = max 0 retries;
            watchdog_s = watchdog;
          };
      }
    in
    Detcor_serve.Server.run cfg
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent verification daemon: a crash-safe job queue \
          over loopback TCP (JSON lines) running verify/synthesize/simulate \
          jobs on supervised worker subprocesses, with admission control, \
          watchdogs, retry-with-backoff, checkpoint preemption of batch \
          work and a result cache.  SIGTERM drains gracefully (exit 143); \
          a $(b,kill -9) loses no accepted job — restart on the same \
          $(b,--spool) to resume.")
    Term.(
      const run $ listen_arg $ spool_arg $ slots_arg $ queue_max_arg
      $ tenant_max_arg $ watchdog_arg $ retries_arg $ obs_term)

let client_cmd =
  let addr_pos =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ADDR" ~doc:"Daemon address (HOST:PORT).")
  in
  let json_pos =
    Arg.(
      non_empty
      & pos_right 0 string []
      & info [] ~docv:"JSON"
          ~doc:
            "Requests, one JSON object each, e.g. \
             '{\"op\":\"submit\",\"kind\":\"verify\",\"file\":\"p.dc\"}'.")
  in
  let run addr jsons =
    match Detcor_serve.Client.connect addr with
    | Error m -> or_die (Error m)
    | Ok c ->
      Fun.protect
        ~finally:(fun () -> Detcor_serve.Client.close c)
        (fun () ->
          List.fold_left
            (fun code line ->
              match Detcor_serve.Client.rpc_raw c line with
              | Error m -> or_die (Error m)
              | Ok reply ->
                print_endline reply;
                let refused =
                  match Jsonx.of_string reply with
                  | Ok j -> Jsonx.member "ok" j = Some (Jsonx.Bool false)
                  | Error _ -> true
                in
                if refused then 1 else code)
            0 jsons)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send raw protocol requests to a running $(b,dcheck serve) daemon \
          and print each reply line.  Exits 1 if any reply was refused \
          ($(i,ok:false)).")
    Term.(const run $ addr_pos $ json_pos)

let main =
  Cmd.group
    (Cmd.info "dcheck" ~version:"1.0.0"
       ~doc:
         "Detectors and correctors: verification, extraction, synthesis and \
          simulation of fault-tolerance components.")
    [ info_cmd; verify_cmd; components_cmd; synthesize_cmd; simulate_cmd;
      monitor_cmd; profile_cmd; graph_cmd; report_cmd; top_cmd; serve_cmd;
      client_cmd ]

(* cmdliner reports its own CLI parse problems with [Exit.cli_error]
   (124); the documented contract puts every usage error at 2. *)
let () =
  let code = Cmd.eval' main in
  let code = if code = Cmd.Exit.cli_error then 2 else code in
  exit_code_seen := code;
  exit code
